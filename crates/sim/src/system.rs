//! The multi-chip system simulator.
//!
//! A system is several chips instantiated as component sets on **one**
//! discrete-event engine, joined by an [`InterconnectComponent`] that
//! carries inter-chip hand-offs hop-by-hop over the topology's links —
//! with per-link serialization and queueing, so concurrent transfers
//! contend instead of seeing a flat latency.
//!
//! Each chip is driven by a [`ChipSequencer`]: a ready-set dispatcher
//! over the chip's stage dependency graph ([`crate::stage::StageGraph`]).
//! Every `(batch, partition)` stage spawns its partition program's
//! cores when its graph dependencies are satisfied and its resource
//! claims (crossbar groups, memory channel) are free. In the default
//! [`ScheduleMode::Barrier`] the graph is a single round-major chain —
//! the paper's full-chip barrier, byte-identical to the golden
//! fixtures. Under [`ScheduleMode::Interleaved`] only dataflow and
//! resource-reuse edges remain, so a chip starts batch `b+1`'s
//! partition 0 the moment its crossbars free up while batch `b` still
//! drains downstream partitions.
//!
//! A chip may ship hand-offs to *several* downstream peers (fan-out)
//! and gate on hand-offs from several upstream producers (fan-in);
//! each batch's first stage carries one external dependency per
//! producer. Topology slots may override the system's base
//! [`ChipSpec`] for heterogeneous systems.
//!
//! The single-chip [`crate::ChipSimulator`] is a thin wrapper over
//! this machinery with a [`Topology::single`] system; its analytic
//! reports stay byte-identical to the golden fixtures.

use crate::components::{
    BusComponent, ChipEvent, ClosedLoopDram, CoreComponent, CoreTiming, InlineDram, MemChannel,
    Rendezvous,
};
use crate::error::SimError;
use crate::report::{
    ChipSimSummary, CoreActivity, EngineMode, LinkStats, PartitionSimReport, SimReport,
};
use crate::serve::{
    percentiles, BufferCore, RequestBuffer, RequestRecord, RequestSource, ServingConfig,
    ServingReport, ARRIVAL_CHUNK,
};
#[cfg(feature = "sharded")]
use crate::serve::{AdmissionSink, ADMISSION_LATENCY_NS};
use crate::stage::StageGraph;
use pim_arch::{ChipSpec, EnergyModel, Link, PowerBreakdown, ScheduleMode, TimingMode, Topology};
use pim_dram::{DramConfig, DramEnergy, TraceStats};
use pim_engine::{Component, ComponentId, Engine, EngineCtx, Event, SimTime};
use pim_isa::{ChipProgram, CoreId};
use std::any::Any;
#[cfg(feature = "sharded")]
use std::cmp::Reverse;
#[cfg(feature = "sharded")]
use std::collections::BinaryHeap;

#[cfg(feature = "sharded")]
use pim_engine::RemoteEvent;

/// Default closed-loop address-interleave granularity: two LPDDR3 rows
/// per stripe keeps sequential streams row-friendly while still
/// spreading blocks across channels.
pub(crate) const DEFAULT_INTERLEAVE_BYTES: usize = 4096;

/// One per-round boundary transfer a chip ships downstream after its
/// last partition drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handoff {
    /// Destination chip index.
    pub dst: usize,
    /// Bytes shipped per round (the downstream chip's entry
    /// activations for the whole round).
    pub bytes: usize,
}

/// One chip's share of a system workload.
#[derive(Debug, Clone, Default)]
pub struct ChipLoad<'a> {
    /// The partition programs this chip executes each round, in
    /// order (empty for chips the schedule leaves idle).
    pub programs: &'a [ChipProgram],
    /// Boundary transfers shipped after each round, one per
    /// downstream consumer (empty for sinks; several entries fan the
    /// chip's output out to multiple peers).
    pub handoffs: Vec<Handoff>,
}

impl<'a> ChipLoad<'a> {
    /// A load executing `programs` with no downstream hand-off.
    pub fn new(programs: &'a [ChipProgram]) -> Self {
        Self { programs, handoffs: Vec::new() }
    }

    /// Adds a per-round hand-off of `bytes` to chip `dst`.
    pub fn with_handoff(mut self, dst: usize, bytes: usize) -> Self {
        self.handoffs.push(Handoff { dst, bytes });
        self
    }
}

/// Event-driven simulator for a multi-chip system on the shared
/// [`pim_engine`] discrete-event core.
///
/// Chips default to one shared [`ChipSpec`]; topology slots may carry
/// per-chip overrides ([`Topology::with_chip_override`]) for
/// heterogeneous systems. The topology contributes the interconnect
/// graph. See the module docs for the execution model.
///
/// # Example
///
/// ```
/// use compass::{Compiler, CompileOptions, Strategy};
/// use pim_arch::{ChipSpec, Topology};
/// use pim_model::zoo;
/// use pim_sim::{ChipLoad, SystemSimulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let chip = ChipSpec::chip_s();
/// let compiled = Compiler::new(chip.clone()).compile(
///     &zoo::tiny_cnn(),
///     &CompileOptions::new().with_strategy(Strategy::Greedy).with_batch_size(2),
/// )?;
/// // Batch-shard across a 2-chip ring: both chips run the whole model
/// // on their own samples, concurrently.
/// let sim = SystemSimulator::new(chip, Topology::ring(2));
/// let loads = [ChipLoad::new(compiled.programs()), ChipLoad::new(compiled.programs())];
/// let report = sim.run(&loads, 1, 4)?;
/// assert!(report.makespan_ns > 0.0);
/// assert_eq!(report.chips.as_ref().unwrap().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystemSimulator {
    chip: ChipSpec,
    topology: Topology,
    replay_dram: bool,
    mode: TimingMode,
    schedule: ScheduleMode,
    dram_channels: Option<usize>,
    interleave_bytes: usize,
    dram_reorder: bool,
    /// Explicit event-queue pre-size hint; `None` derives one from the
    /// workload.
    event_capacity: Option<usize>,
    /// Serving-path arrival pre-generation chunk; `None` uses the
    /// default [`ARRIVAL_CHUNK`].
    arrival_chunk: Option<usize>,
    #[cfg(feature = "reference-queue")]
    reference_queue: bool,
    #[cfg(feature = "sharded")]
    sharded: bool,
}

impl SystemSimulator {
    /// Creates a system of `chip`s joined by `topology` (slots without
    /// an override run `chip`), in analytic timing mode, barrier
    /// scheduling, with the in-line DRAM model enabled.
    pub fn new(chip: ChipSpec, topology: Topology) -> Self {
        Self {
            chip,
            topology,
            replay_dram: true,
            mode: TimingMode::Analytic,
            schedule: ScheduleMode::Barrier,
            dram_channels: None,
            interleave_bytes: DEFAULT_INTERLEAVE_BYTES,
            dram_reorder: false,
            event_capacity: None,
            arrival_chunk: None,
            #[cfg(feature = "reference-queue")]
            reference_queue: false,
            #[cfg(feature = "sharded")]
            sharded: std::env::var("PIM_SHARDED").map(|v| v == "1").unwrap_or(false),
        }
    }

    /// Runs multi-chip simulations with one event-loop thread per chip
    /// shard (conservative link-latency lookahead; reports stay
    /// byte-identical to the single-threaded engine). Defaults to the
    /// `PIM_SHARDED=1` environment switch. Single-chip topologies have
    /// no links to synchronize over and always run single-threaded.
    #[cfg(feature = "sharded")]
    pub fn with_sharded(mut self, enabled: bool) -> Self {
        self.sharded = enabled;
        self
    }

    /// Runs the simulation on the engine's retired binary-heap event
    /// queue instead of the calendar queue — the determinism suites'
    /// oracle. Timing and reports are identical by construction; this
    /// knob exists so tests can *prove* that, byte for byte.
    #[cfg(feature = "reference-queue")]
    pub fn with_reference_queue(mut self, enabled: bool) -> Self {
        self.reference_queue = enabled;
        self
    }

    /// The system topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Enables or disables the per-chip in-line `pim-dram` model
    /// (energy refinement only; ignored in closed-loop mode).
    pub fn with_dram_replay(mut self, enabled: bool) -> Self {
        self.replay_dram = enabled;
        self
    }

    /// Selects the memory-channel timing fidelity.
    pub fn with_timing_mode(mut self, mode: TimingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the intra-chip stage dispatch policy. The default
    /// [`ScheduleMode::Barrier`] reproduces the paper's full-chip
    /// barriers (and the golden fixtures); [`ScheduleMode::Interleaved`]
    /// lets a batch's head stages overlap the previous batch's drain
    /// wherever crossbar-group claims permit.
    pub fn with_schedule_mode(mut self, schedule: ScheduleMode) -> Self {
        self.schedule = schedule;
        self
    }

    /// The intra-chip stage dispatch policy in effect.
    pub fn schedule_mode(&self) -> ScheduleMode {
        self.schedule
    }

    /// Sets the closed-loop DRAM channel count per chip (clamped to at
    /// least one).
    pub fn with_dram_channels(mut self, channels: usize) -> Self {
        self.dram_channels = Some(channels.max(1));
        self
    }

    /// Sets the closed-loop address-interleave granularity in bytes.
    pub fn with_dram_interleave(mut self, bytes: usize) -> Self {
        self.interleave_bytes = bytes.max(1);
        self
    }

    /// Allows the closed-loop controllers to reorder same-instant
    /// in-flight accesses from independent cores FR-FCFS style
    /// (row-buffer hits first). Off by default: arrival-order service
    /// is the documented closed-loop behaviour.
    pub fn with_dram_reorder(mut self, enabled: bool) -> Self {
        self.dram_reorder = enabled;
        self
    }

    /// Pre-sizes the event queue for a known workload. A hint only —
    /// the queue grows past it transparently; the default derives a
    /// size from the loads at `run` time. Sharded runs split an
    /// explicit hint evenly across the shards.
    pub fn with_event_capacity(mut self, events: usize) -> Self {
        self.event_capacity = Some(events);
        self
    }

    /// Sets how many arrivals the serving request source pre-schedules
    /// per engine visit (clamped to at least one). A measurement knob:
    /// request timing is byte-identical for every chunk size — `1`
    /// reproduces the legacy one-event-per-arrival pacing, the default
    /// amortizes the per-arrival scheduling cost — so benchmarks can
    /// isolate the chunking win honestly.
    pub fn with_arrival_chunk(mut self, chunk: usize) -> Self {
        self.arrival_chunk = Some(chunk.max(1));
        self
    }

    /// The serving arrival pre-generation chunk in effect.
    fn arrival_chunk(&self) -> usize {
        self.arrival_chunk.unwrap_or(ARRIVAL_CHUNK).max(1)
    }

    /// The spec chip `c` runs: its slot override, or the system's base
    /// chip.
    fn chip_for(&self, c: usize) -> &ChipSpec {
        self.topology.chip_override(c).unwrap_or(&self.chip)
    }

    /// The closed-loop channel count in effect for the base chip:
    /// explicit, or derived from the chip's aggregate bandwidth over
    /// one LPDDR3 channel's peak.
    pub fn dram_channel_count(&self) -> usize {
        self.dram_channel_count_for(&self.chip)
    }

    fn dram_channel_count_for(&self, chip: &ChipSpec) -> usize {
        self.dram_channels.unwrap_or_else(|| {
            DramConfig::lpddr3_1600().channels_for_bandwidth(chip.memory.bandwidth_gbps)
        })
    }

    fn validate(&self, loads: &[ChipLoad<'_>]) -> Result<(), SimError> {
        self.topology.validate().map_err(|e| SimError::InvalidTopology(e.to_string()))?;
        if loads.len() != self.topology.chips() {
            return Err(SimError::InvalidTopology(format!(
                "{} chip loads for a {}-chip topology",
                loads.len(),
                self.topology.chips()
            )));
        }
        for (c, load) in loads.iter().enumerate() {
            for (i, handoff) in load.handoffs.iter().enumerate() {
                if handoff.dst >= loads.len() || handoff.dst == c {
                    return Err(SimError::InvalidTopology(format!(
                        "chip {c} hands off to invalid chip {}",
                        handoff.dst
                    )));
                }
                if load.handoffs[..i].iter().any(|h| h.dst == handoff.dst) {
                    return Err(SimError::InvalidTopology(format!(
                        "chip {c} declares multiple hand-offs to chip {}",
                        handoff.dst
                    )));
                }
                if load.programs.is_empty() {
                    return Err(SimError::InvalidTopology(format!(
                        "idle chip {c} cannot produce a hand-off"
                    )));
                }
            }
            let chip = self.chip_for(c);
            for program in load.programs {
                if program.cores() > chip.cores {
                    return Err(SimError::CoreCountMismatch {
                        program_cores: program.cores(),
                        chip_cores: chip.cores,
                    });
                }
            }
        }
        // A cyclic hand-off chain starves at round 0: every chip on
        // the cycle waits for an input no one can produce. With
        // fan-out a chip has several outgoing edges, so run a proper
        // DFS (0 = unvisited, 1 = on stack, 2 = done).
        let mut state = vec![0u8; loads.len()];
        fn dfs(at: usize, loads: &[ChipLoad<'_>], state: &mut [u8]) -> Option<usize> {
            state[at] = 1;
            for handoff in &loads[at].handoffs {
                match state[handoff.dst] {
                    1 => return Some(handoff.dst),
                    0 => {
                        if let Some(hit) = dfs(handoff.dst, loads, state) {
                            return Some(hit);
                        }
                    }
                    _ => {}
                }
            }
            state[at] = 2;
            None
        }
        for start in 0..loads.len() {
            if state[start] == 0 {
                if let Some(on_cycle) = dfs(start, loads, &mut state) {
                    return Err(SimError::InvalidTopology(format!(
                        "hand-off cycle through chip {on_cycle}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Runs `rounds` pipeline rounds of the per-chip workloads and
    /// folds the outcome into one [`SimReport`]. `samples_per_round`
    /// is the number of inference samples the whole system completes
    /// per round (it scales the report's throughput, not the
    /// simulation itself).
    ///
    /// Partition reports appear chip-major, then in (round, partition)
    /// order within each chip — whatever order interleaving actually
    /// executed them in. The `chips`/`links` report sections are
    /// populated only for multi-chip topologies, keeping single-chip
    /// analytic reports byte-identical to the golden fixtures.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTopology`] for workloads that do not
    /// fit the topology, [`SimError::CoreCountMismatch`] when a
    /// program does not match its slot's chip, and
    /// [`SimError::Deadlock`] for malformed schedules.
    pub fn run(
        &self,
        loads: &[ChipLoad<'_>],
        rounds: usize,
        samples_per_round: usize,
    ) -> Result<SimReport, SimError> {
        self.validate(loads)?;
        let rounds = rounds.max(1);
        #[cfg(feature = "sharded")]
        if self.sharded {
            match self.shard_fallback_reason(loads) {
                None => return self.run_sharded(loads, rounds, samples_per_round),
                Some(reason) => note_shard_fallback(reason),
            }
        }
        self.run_single(loads, rounds, samples_per_round)
    }

    /// Why a sharding request cannot be honoured for this system, if
    /// it cannot: single-chip systems have nothing to parallelize, and
    /// a zero-latency link admits no conservative lookahead window.
    /// `None` means the sharded path will run. The effective mode is
    /// always recorded in [`SimReport::engine`], so benchmarks cannot
    /// misattribute single-threaded numbers to the sharded path.
    #[cfg(feature = "sharded")]
    fn shard_fallback_reason(&self, loads: &[ChipLoad<'_>]) -> Option<&'static str> {
        if loads.len() <= 1 {
            return Some("the system has a single chip, so there is nothing to parallelize");
        }
        if !self.topology.min_link_latency_ns().is_some_and(|latency| latency > 0.0) {
            return Some("a zero-latency link admits no conservative lookahead window");
        }
        None
    }

    /// Peak concurrently-live stage cores of one chip's load under
    /// the schedule in effect.
    fn stage_cores_of(&self, load: &ChipLoad<'_>) -> usize {
        match self.schedule {
            // Barrier mode runs one stage per chip at a time.
            ScheduleMode::Barrier => load.programs.iter().map(|p| p.cores()).max().unwrap_or(0),
            // Interleaving can have every partition in flight.
            ScheduleMode::Interleaved => load.programs.iter().map(|p| p.cores()).sum(),
        }
    }

    /// The event-queue pre-size for a whole-system engine: the
    /// explicit [`with_event_capacity`](Self::with_event_capacity)
    /// hint, or a derivation from *peak pending* events — each live
    /// component (a core of an in-flight stage, the shared
    /// channel/bus/rendezvous/DRAM per chip, the interconnect) keeps
    /// only a bounded handful of events in flight, so peak occupancy
    /// scales with concurrent components — not with instructions ×
    /// rounds, which measures throughput. A hint only; the queue
    /// grows past it transparently.
    fn event_capacity_for(&self, loads: &[ChipLoad<'_>]) -> usize {
        self.event_capacity.unwrap_or_else(|| {
            let stage_cores: usize = loads.iter().map(|l| self.stage_cores_of(l)).sum();
            ((stage_cores + 8 * loads.len()) * 8).clamp(256, 1 << 16)
        })
    }

    /// The serving-path pre-size: the steady-state derivation of
    /// [`Self::event_capacity_for`] plus the frontend's own peak —
    /// one pre-scheduled chunk of arrivals and the admission fan-out.
    /// `requests` is the *realized* arrival count, i.e. the traffic
    /// spec's mean rate × duration already sampled, so short traces
    /// never over-reserve.
    fn serving_event_capacity(&self, loads: &[ChipLoad<'_>], requests: usize) -> usize {
        self.event_capacity.unwrap_or_else(|| {
            let stage_cores: usize = loads.iter().map(|l| self.stage_cores_of(l)).sum();
            let steady = (stage_cores + 8 * loads.len()) * 8;
            let frontend = requests.min(self.arrival_chunk()) + 2 * loads.len();
            (steady + frontend).clamp(256, 1 << 16)
        })
    }

    /// One shard's slice of the pre-size: an explicit hint is split
    /// evenly across chips; the derived default counts only the
    /// shard's own stage cores and shared components.
    #[cfg(feature = "sharded")]
    fn shard_event_capacity(&self, load: &ChipLoad<'_>, chips: usize) -> usize {
        self.event_capacity
            .map(|cap| (cap / chips).max(256))
            .unwrap_or_else(|| ((self.stage_cores_of(load) + 8) * 8).clamp(256, 1 << 16))
    }

    /// Registers chip `c`'s shared components in the canonical order —
    /// `[dram?, rendezvous, channel, bus]` — and returns their
    /// addresses. The single-threaded engine and every shard use this
    /// same layout, so global component ids are identical across
    /// execution modes.
    fn register_chip(&self, engine: &mut Engine<ChipEvent>, c: usize) -> ChipParts {
        let chip = self.chip_for(c);
        let dram = match self.mode {
            TimingMode::Analytic => {
                self.replay_dram.then(|| engine.add_component(InlineDram::new()))
            }
            TimingMode::ClosedLoop => Some(engine.add_component(ClosedLoopDram::new(
                self.dram_channel_count_for(chip),
                self.interleave_bytes,
                self.dram_reorder,
            ))),
        };
        let rendezvous = engine.add_component(Rendezvous::default());
        let channel = engine.add_component(MemChannel::new(chip, dram, self.mode));
        let bus = engine.add_component(BusComponent::new(chip, rendezvous));
        ChipParts { dram, channel, bus, rendezvous }
    }

    /// Builds chip `c`'s sequencer over its stage graph and per-source
    /// hand-off ledger: batch b's head stage carries one external
    /// dependency per upstream producer, so a fast producer can never
    /// stand in for a slow one.
    fn sequencer_for(
        &self,
        c: usize,
        loads: &[ChipLoad<'_>],
        rounds: usize,
        parts: &ChipParts,
        interconnect: ComponentId,
    ) -> ChipSequencer {
        let load = &loads[c];
        let upstream: Vec<(usize, usize)> = loads
            .iter()
            .enumerate()
            .filter(|(_, l)| l.handoffs.iter().any(|h| h.dst == c))
            .map(|(src, _)| (src, 0))
            .collect();
        let graph = StageGraph::build(load.programs, rounds, self.schedule, upstream.len());
        let nodes = rounds * load.programs.len();
        ChipSequencer {
            chip_index: c,
            programs: load.programs.to_vec(),
            timing: CoreTiming::of(self.chip_for(c)),
            channel: parts.channel,
            bus: parts.bus,
            rendezvous: parts.rendezvous,
            interconnect,
            handoffs: load.handoffs.clone(),
            upstream,
            rounds,
            schedule: self.schedule,
            notify: None,
            graph,
            running: (0..nodes).map(|_| None).collect(),
            wait_from: vec![None; rounds],
            handoff_wait_ns: 0.0,
            records: Vec::new(),
        }
    }

    /// The classic path: every chip on one engine, one event loop.
    fn run_single(
        &self,
        loads: &[ChipLoad<'_>],
        rounds: usize,
        samples_per_round: usize,
    ) -> Result<SimReport, SimError> {
        let chips = loads.len();
        let mut engine: Engine<ChipEvent> = Engine::new(0);
        #[cfg(feature = "reference-queue")]
        if self.reference_queue {
            engine.use_reference_queue();
        }
        engine.reserve_events(self.event_capacity_for(loads));
        let parts: Vec<ChipParts> =
            (0..chips).map(|c| self.register_chip(&mut engine, c)).collect();

        // The interconnect is registered before the sequencers, so the
        // sequencer addresses it must deliver to are the next `chips`
        // ids after its own.
        let interconnect_id = engine.next_component_id();
        let sequencer_ids: Vec<ComponentId> =
            (0..chips).map(|c| ComponentId(interconnect_id.0 + 1 + c)).collect();
        let interconnect =
            engine.add_component(InterconnectComponent::new(&self.topology, &sequencer_ids));
        assert_eq!(interconnect, interconnect_id);
        for c in 0..chips {
            let id = engine.add_component(self.sequencer_for(
                c,
                loads,
                rounds,
                &parts[c],
                interconnect_id,
            ));
            assert_eq!(id, sequencer_ids[c]);
        }
        for &id in &sequencer_ids {
            engine.schedule(SimTime::ZERO, id, ChipEvent::Kick);
        }
        engine.run_until_idle();

        let outcomes: Vec<ChipOutcome> = (0..chips)
            .map(|c| self.chip_outcome(&mut engine, &parts[c], sequencer_ids[c]))
            .collect();
        let links = (!self.topology.is_single()).then(|| {
            let ic: InterconnectComponent =
                engine.extract(interconnect_id).expect("interconnect survives the run");
            ic.stats
        });
        let mut report = self.fold_report(loads, rounds, samples_per_round, outcomes, links)?;
        report.engine = Some(EngineMode::SingleThread);
        Ok(report)
    }

    /// Runs an *open-loop serving* workload: instead of a fixed round
    /// count, a [`crate::TrafficSpec`]-driven request source feeds a
    /// [`crate::BatchPolicy`]-governed request buffer, and every
    /// admitted batch appends one pipeline round to the live system.
    /// The returned report carries the usual sections plus
    /// [`SimReport::serving`] — per-request timelines, nearest-rank
    /// p50/p99/p999 latency, queueing delay, goodput and drops — and
    /// `batch` reflects the requests actually served.
    ///
    /// Serving runs are deterministic per traffic seed on *either*
    /// engine. When sharding is requested and honoured, the admission
    /// frontend (source + buffer) moves onto the shard boundary: the
    /// arrival stream's next-arrival lower bound — advanced by the
    /// [`crate::ADMISSION_LATENCY_NS`] admission delay — joins the
    /// in-flight transfer tails as a horizon term, admitted rounds
    /// ship to the shards as ordered remote events, and the report is
    /// byte-identical to the single-threaded oracle. The fallback
    /// reasons (single chip, zero-latency link) are exactly
    /// [`Self::run`]'s, recorded in [`SimReport::engine`] and noted
    /// once per process.
    ///
    /// # Errors
    ///
    /// Everything [`SystemSimulator::run`] returns, plus
    /// [`SimError::InvalidServing`] for malformed traces, a zero
    /// queue capacity or in-flight limit, or a system with no active
    /// chip to serve on.
    pub fn run_serving(
        &self,
        loads: &[ChipLoad<'_>],
        serving: &ServingConfig,
    ) -> Result<SimReport, SimError> {
        self.validate(loads)?;
        if serving.queue_capacity == 0 {
            return Err(SimError::InvalidServing(
                "queue capacity must admit at least one request".into(),
            ));
        }
        if serving.max_inflight == 0 {
            return Err(SimError::InvalidServing(
                "at least one round must be allowed in flight".into(),
            ));
        }
        match serving.policy {
            crate::BatchPolicy::MaxSize(0) | crate::BatchPolicy::Deadline { max_size: 0, .. } => {
                return Err(SimError::InvalidServing(
                    "batches must hold at least one request".into(),
                ))
            }
            _ => {}
        }
        let arrivals = serving.traffic.arrivals()?;
        if loads.iter().all(|l| l.programs.is_empty()) {
            return Err(SimError::InvalidServing(
                "every chip is idle; nothing can serve the request stream".into(),
            ));
        }
        #[cfg(feature = "sharded")]
        if self.sharded {
            match self.shard_fallback_reason(loads) {
                None => return self.run_serving_sharded(loads, serving, arrivals),
                Some(reason) => note_shard_fallback(reason),
            }
        }
        self.run_serving_single(loads, serving, arrivals)
    }

    /// The single-threaded serving path: the whole system plus the
    /// request source and buffer on one engine — the byte-identity
    /// oracle the sharded path is tested against.
    fn run_serving_single(
        &self,
        loads: &[ChipLoad<'_>],
        serving: &ServingConfig,
        arrivals: Vec<f64>,
    ) -> Result<SimReport, SimError> {
        let chips = loads.len();
        let mut engine: Engine<ChipEvent> = Engine::new(0);
        #[cfg(feature = "reference-queue")]
        if self.reference_queue {
            engine.use_reference_queue();
        }
        engine.reserve_events(self.serving_event_capacity(loads, arrivals.len()));
        let parts: Vec<ChipParts> =
            (0..chips).map(|c| self.register_chip(&mut engine, c)).collect();
        let interconnect_id = engine.next_component_id();
        let sequencer_ids: Vec<ComponentId> =
            (0..chips).map(|c| ComponentId(interconnect_id.0 + 1 + c)).collect();
        let interconnect =
            engine.add_component(InterconnectComponent::new(&self.topology, &sequencer_ids));
        assert_eq!(interconnect, interconnect_id);
        // The frontend components follow the sequencers: buffer, then
        // source.
        let buffer_id = ComponentId(interconnect_id.0 + 1 + chips);
        let source_id = ComponentId(buffer_id.0 + 1);
        for c in 0..chips {
            // Sequencers start with zero rounds; the buffer appends
            // one per admitted batch.
            let mut sequencer = self.sequencer_for(c, loads, 0, &parts[c], interconnect_id);
            if !loads[c].programs.is_empty() {
                sequencer.notify = Some(buffer_id);
            }
            let id = engine.add_component(sequencer);
            assert_eq!(id, sequencer_ids[c]);
        }
        let active: Vec<(usize, ComponentId)> = (0..chips)
            .filter(|&c| !loads[c].programs.is_empty())
            .map(|c| (c, sequencer_ids[c]))
            .collect();
        let id = engine.add_component(RequestBuffer::new(serving, active));
        assert_eq!(id, buffer_id);
        let id =
            engine.add_component(RequestSource::new(arrivals, buffer_id, self.arrival_chunk()));
        assert_eq!(id, source_id);
        for &id in &sequencer_ids {
            engine.schedule(SimTime::ZERO, id, ChipEvent::Kick);
        }
        engine.schedule(SimTime::ZERO, source_id, ChipEvent::Kick);
        engine.run_until_idle();

        let buffer: RequestBuffer =
            engine.extract(buffer_id).expect("request buffer survives the run");
        let outcomes: Vec<ChipOutcome> = (0..chips)
            .map(|c| self.chip_outcome(&mut engine, &parts[c], sequencer_ids[c]))
            .collect();
        let links = (!self.topology.is_single()).then(|| {
            let ic: InterconnectComponent =
                engine.extract(interconnect_id).expect("interconnect survives the run");
            ic.stats
        });
        self.fold_serving_report(
            loads,
            serving,
            buffer.core,
            outcomes,
            links,
            EngineMode::SingleThread,
        )
    }

    /// Folds a finished serving run — the frontend's admission ledger
    /// plus the per-chip outcomes — into the final report. Shared by
    /// the single-threaded and sharded paths: identical ledgers and
    /// outcomes fold to identical bytes, whatever engine produced
    /// them.
    fn fold_serving_report(
        &self,
        loads: &[ChipLoad<'_>],
        serving: &ServingConfig,
        core: BufferCore,
        outcomes: Vec<ChipOutcome>,
        links: Option<Vec<LinkStats>>,
        engine: EngineMode,
    ) -> Result<SimReport, SimError> {
        // Round spans — folded from the stage records *before*
        // fold_report consumes the outcomes. A round starts when its
        // first stage starts anywhere and finishes when its last stage
        // drains on the slowest chip.
        let mut round_start = vec![f64::INFINITY; core.formed];
        let mut round_finish = vec![0.0f64; core.formed];
        for outcome in &outcomes {
            for record in &outcome.sequencer.records {
                round_start[record.round] = round_start[record.round].min(record.start_ns);
                round_finish[record.round] = round_finish[record.round].max(record.end_ns);
            }
        }
        let mut report = self.fold_report(loads, core.formed.max(1), 1, outcomes, links)?;

        let records: Vec<RequestRecord> = core
            .admitted
            .iter()
            .map(|&(arrival_ns, round)| RequestRecord {
                arrival_ns,
                round,
                start_ns: round_start[round],
                finish_ns: round_finish[round],
            })
            .collect();
        // Quickselect the three requested ranks instead of sorting the
        // whole sample: same exact nearest-rank values, linear expected
        // time.
        let mut latencies: Vec<f64> = records.iter().map(|r| r.latency_ns()).collect();
        let tails = percentiles(&mut latencies, &[0.50, 0.99, 0.999]);
        let mean_queue_ns = if records.is_empty() {
            0.0
        } else {
            records.iter().map(|r| r.queue_ns()).sum::<f64>() / records.len() as f64
        };
        let slo_violations = match serving.slo_ns {
            Some(slo) => latencies.iter().filter(|&&l| l > slo).count(),
            None => 0,
        };
        let good = records.len() - slo_violations;
        let goodput_rps =
            if report.makespan_ns > 0.0 { good as f64 / (report.makespan_ns * 1e-9) } else { 0.0 };
        report.batch = records.len().max(1);
        report.serving = Some(ServingReport {
            requests: records.len(),
            dropped: core.dropped,
            rounds: core.formed,
            p50_ns: tails[0],
            p99_ns: tails[1],
            p999_ns: tails[2],
            mean_queue_ns,
            goodput_rps,
            slo_violations,
            records,
        });
        report.engine = Some(engine);
        Ok(report)
    }

    /// Extracts everything the report fold needs about one chip from
    /// its (drained or stalled) engine — the hand-off from simulation
    /// to accounting, engine-free so sharded workers can produce it
    /// on their own threads.
    fn chip_outcome(
        &self,
        engine: &mut Engine<ChipEvent>,
        parts: &ChipParts,
        sequencer: ComponentId,
    ) -> ChipOutcome {
        let sequencer: ChipSequencer =
            engine.extract(sequencer).expect("sequencer survives the run");
        let mut stalled_cores = Vec::new();
        if !sequencer.graph.all_complete() {
            for stage in sequencer.running.iter().flatten() {
                stalled_cores.push(
                    stage
                        .cores
                        .iter()
                        .map(|&id| engine.extract(id).expect("core component survives the run"))
                        .collect(),
                );
            }
        }
        let channel: MemChannel = engine.extract(parts.channel).expect("channel survives the run");
        let rendezvous: Rendezvous =
            engine.extract(parts.rendezvous).expect("rendezvous survives the run");
        let (inline_dram, closed_dram) = match self.mode {
            TimingMode::Analytic => {
                (parts.dram.map(|id| engine.extract(id).expect("dram survives the run")), None)
            }
            TimingMode::ClosedLoop => {
                let id = parts.dram.expect("closed-loop mode wires a DRAM component");
                (None, Some(engine.extract(id).expect("dram survives the run")))
            }
        };
        ChipOutcome { sequencer, channel, rendezvous, inline_dram, closed_dram, stalled_cores }
    }

    /// Folds per-chip outcomes into one [`SimReport`]. Shared by the
    /// single-threaded and sharded paths: identical outcomes fold to
    /// identical bytes.
    fn fold_report(
        &self,
        loads: &[ChipLoad<'_>],
        rounds: usize,
        samples_per_round: usize,
        mut outcomes: Vec<ChipOutcome>,
        links: Option<Vec<LinkStats>>,
    ) -> Result<SimReport, SimError> {
        let chips = loads.len();
        if outcomes.iter().any(|o| !o.sequencer.graph.all_complete()) {
            return Err(deadlock_of(&outcomes));
        }
        let energy_models: Vec<EnergyModel> =
            (0..chips).map(|c| EnergyModel::new(self.chip_for(c))).collect();
        let mut partitions = Vec::new();
        let mut makespan_ns = 0.0f64;
        let mut energy = PowerBreakdown::new();
        let mut summaries = Vec::with_capacity(chips);
        for (c, load) in loads.iter().enumerate() {
            let seq = &mut outcomes[c].sequencer;
            // Interleaving may finish stages out of round-major order;
            // reports stay in (round, partition) order either way.
            seq.records.sort_by_key(|r| (r.round, r.partition));
            let energy_model = &energy_models[c];
            let mut chip_end = 0.0f64;
            for record in &seq.records {
                let program = &load.programs[record.partition];
                let stats = program.stats();
                let mut part_energy = PowerBreakdown::new();
                part_energy.mvm_nj = energy_model.mvm_energy_nj(stats.mvm_activations);
                part_energy.weight_write_nj =
                    energy_model.weight_write_energy_nj(stats.weight_write_bits);
                part_energy.weight_load_nj =
                    energy_model.dram_energy_nj(stats.weight_load_bytes * 8);
                part_energy.activation_dram_nj = energy_model
                    .dram_energy_nj((stats.data_load_bytes + stats.data_store_bytes) * 8);
                part_energy.interconnect_nj = energy_model.bus_energy_nj(stats.interconnect_bytes);
                part_energy.vfu_nj = energy_model.vfu_energy_nj(stats.vfu_elements);
                energy += part_energy;
                chip_end = chip_end.max(record.end_ns);
                partitions.push(PartitionSimReport {
                    index: partitions.len(),
                    start_ns: record.start_ns,
                    end_ns: record.end_ns,
                    replace_ns: record.replace_ns,
                    stats,
                    energy: part_energy,
                    core_activity: record.activity.clone(),
                });
            }
            makespan_ns = makespan_ns.max(chip_end);
            summaries.push(ChipSimSummary {
                chip: c,
                partitions: seq.records.len(),
                // Rounds the chip actually completed: 0 for idle
                // chips, the requested count for active ones.
                rounds: if load.programs.is_empty() {
                    0
                } else {
                    seq.records.len() / load.programs.len()
                },
                end_ns: chip_end,
                handoff_wait_ns: seq.handoff_wait_ns,
            });
        }
        energy.static_nj =
            energy_models.iter().map(|m| m.static_energy_nj(makespan_ns)).sum::<f64>();

        let mut dram_energy: Option<DramEnergy> = None;
        let mut dram_trace = TraceStats::default();
        let mut dram_channels: Option<Vec<pim_dram::ChannelStats>> = None;
        for outcome in &outcomes {
            if self.schedule == ScheduleMode::Interleaved {
                // Every drained stage retires its rendezvous tag
                // bucket, so nothing may survive a completed run.
                debug_assert!(
                    outcome.rendezvous.delivered.is_empty(),
                    "interleaved stages must retire their rendezvous tag buckets"
                );
            }
            if self.replay_dram || self.mode == TimingMode::ClosedLoop {
                dram_trace.requests += outcome.channel.stats.requests;
                dram_trace.read_bytes += outcome.channel.stats.read_bytes;
                dram_trace.write_bytes += outcome.channel.stats.write_bytes;
            }
            let chip_energy = match self.mode {
                TimingMode::Analytic => outcome
                    .inline_dram
                    .as_ref()
                    .and_then(|dram| (dram.requests > 0).then(|| dram.sim.energy())),
                TimingMode::ClosedLoop => {
                    let dram = outcome
                        .closed_dram
                        .as_ref()
                        .expect("closed-loop mode wires a DRAM component");
                    dram_channels.get_or_insert_with(Vec::new).extend(dram.mem.channel_stats());
                    (dram.requests > 0).then(|| dram.mem.energy())
                }
            };
            if let Some(e) = chip_energy {
                dram_energy = Some(match dram_energy {
                    None => e,
                    Some(acc) => DramEnergy {
                        activate_nj: acc.activate_nj + e.activate_nj,
                        read_nj: acc.read_nj + e.read_nj,
                        write_nj: acc.write_nj + e.write_nj,
                        refresh_nj: acc.refresh_nj + e.refresh_nj,
                        background_nj: acc.background_nj + e.background_nj,
                    },
                });
            }
        }

        Ok(SimReport {
            batch: (samples_per_round * rounds).max(1),
            partitions,
            makespan_ns,
            energy,
            dram_energy,
            dram_trace,
            dram_channels,
            chips: (!self.topology.is_single()).then_some(summaries),
            links,
            // Serving runs attach their section after the fold.
            serving: None,
            // The caller stamps the effective mode.
            engine: None,
        })
    }

    /// The sharded path: one engine thread per chip, synchronized
    /// through the interconnect-as-[`pim_engine::Boundary`] with
    /// dynamic per-chip lookahead derived from the declared hand-off
    /// graph, each route's serialization + propagation, and the tails
    /// of in-flight transfers. Component layout, event times, and
    /// link accounting reproduce the single engine exactly, so the
    /// folded report is byte-identical.
    #[cfg(feature = "sharded")]
    fn run_sharded(
        &self,
        loads: &[ChipLoad<'_>],
        rounds: usize,
        samples_per_round: usize,
    ) -> Result<SimReport, SimError> {
        let chips = loads.len();
        // Mirror the single-engine global layout — per chip
        // `[dram?, rendezvous, channel, bus]`, then the interconnect,
        // then the sequencers — with each shard registering only its
        // own chip's components and padding the rest as vacant slots,
        // so every cross-shard address is identical in every engine.
        let per_chip = 3 + usize::from(match self.mode {
            TimingMode::Analytic => self.replay_dram,
            TimingMode::ClosedLoop => true,
        });
        let interconnect_id = ComponentId(chips * per_chip);
        let sequencer_ids: Vec<ComponentId> =
            (0..chips).map(|c| ComponentId(interconnect_id.0 + 1 + c)).collect();
        // Per-pair delivery lower bounds for the *declared* hand-off
        // graph: only a chip whose load declares a hand-off to `dst`
        // can ever ship there, and each route hop pays the hand-off's
        // full serialization plus propagation even when uncontended.
        let mut route_bounds = vec![vec![None; chips]; chips];
        for (src, load) in loads.iter().enumerate() {
            for handoff in &load.handoffs {
                route_bounds[src][handoff.dst] =
                    self.topology.route_transfer_bound_ns(src, handoff.dst, handoff.bytes);
            }
        }
        let mut boundary = LinkBoundary::new(
            InterconnectComponent::new(&self.topology, &sequencer_ids),
            interconnect_id,
            chips,
            route_bounds,
        );
        let sequencer_ids = &sequencer_ids;
        let shards: Vec<_> = (0..chips)
            .map(|c| {
                move |session: pim_engine::ShardSession<ChipEvent>| -> ChipOutcome {
                    let mut engine: Engine<ChipEvent> = Engine::new(0);
                    #[cfg(feature = "reference-queue")]
                    if self.reference_queue {
                        engine.use_reference_queue();
                    }
                    engine.reserve_events(self.shard_event_capacity(&loads[c], chips));
                    engine.enable_exports();
                    let mut parts = None;
                    for cc in 0..chips {
                        if cc == c {
                            parts = Some(self.register_chip(&mut engine, c));
                        } else {
                            engine.pad_components(per_chip);
                        }
                    }
                    let parts = parts.expect("own chip registered");
                    // The interconnect slot: vacant here, so its
                    // events export to the coordinator's boundary.
                    engine.pad_components(1);
                    for cc in 0..chips {
                        if cc == c {
                            let id = engine.add_component(self.sequencer_for(
                                c,
                                loads,
                                rounds,
                                &parts,
                                interconnect_id,
                            ));
                            assert_eq!(id, sequencer_ids[c]);
                        } else {
                            engine.pad_components(1);
                        }
                    }
                    engine.schedule(SimTime::ZERO, sequencer_ids[c], ChipEvent::Kick);
                    session.drive(&mut engine);
                    self.chip_outcome(&mut engine, &parts, sequencer_ids[c])
                }
            })
            .collect();
        let outcomes = pim_engine::run_sharded(shards, &mut boundary);
        // Sharded runs are multi-chip by construction (single-chip
        // topologies never take this path), so links always report.
        let links = Some(boundary.into_stats());
        let mut report = self.fold_report(loads, rounds, samples_per_round, outcomes, links)?;
        report.engine = Some(EngineMode::Sharded { shards: chips });
        Ok(report)
    }

    /// The sharded serving path: the same per-chip shard layout as
    /// [`Self::run_sharded`], with the admission frontend lifted onto
    /// the boundary ([`ServingBoundary`]) instead of living as source
    /// and buffer components. Each shard pads the buffer and source
    /// slots, so its sequencer's `RoundDone` reports export to the
    /// coordinator, and admitted rounds come back as released
    /// `AppendRound` remote events. Reports are byte-identical to
    /// [`Self::run_serving_single`].
    #[cfg(feature = "sharded")]
    fn run_serving_sharded(
        &self,
        loads: &[ChipLoad<'_>],
        serving: &ServingConfig,
        arrivals: Vec<f64>,
    ) -> Result<SimReport, SimError> {
        let chips = loads.len();
        let per_chip = 3 + usize::from(match self.mode {
            TimingMode::Analytic => self.replay_dram,
            TimingMode::ClosedLoop => true,
        });
        let interconnect_id = ComponentId(chips * per_chip);
        let sequencer_ids: Vec<ComponentId> =
            (0..chips).map(|c| ComponentId(interconnect_id.0 + 1 + c)).collect();
        let buffer_id = ComponentId(interconnect_id.0 + 1 + chips);
        let mut route_bounds = vec![vec![None; chips]; chips];
        for (src, load) in loads.iter().enumerate() {
            for handoff in &load.handoffs {
                route_bounds[src][handoff.dst] =
                    self.topology.route_transfer_bound_ns(src, handoff.dst, handoff.bytes);
            }
        }
        let link = LinkBoundary::new(
            InterconnectComponent::new(&self.topology, &sequencer_ids),
            interconnect_id,
            chips,
            route_bounds,
        );
        let active: Vec<usize> = (0..chips).filter(|&c| !loads[c].programs.is_empty()).collect();
        let mut boundary = ServingBoundary::new(
            link,
            BufferCore::new(serving, active.clone()),
            buffer_id,
            active,
            arrivals,
        );
        let sequencer_ids = &sequencer_ids;
        let shards: Vec<_> = (0..chips)
            .map(|c| {
                move |session: pim_engine::ShardSession<ChipEvent>| -> ChipOutcome {
                    let mut engine: Engine<ChipEvent> = Engine::new(0);
                    #[cfg(feature = "reference-queue")]
                    if self.reference_queue {
                        engine.use_reference_queue();
                    }
                    engine.reserve_events(self.shard_event_capacity(&loads[c], chips));
                    engine.enable_exports();
                    let mut parts = None;
                    for cc in 0..chips {
                        if cc == c {
                            parts = Some(self.register_chip(&mut engine, c));
                        } else {
                            engine.pad_components(per_chip);
                        }
                    }
                    let parts = parts.expect("own chip registered");
                    // The interconnect slot: vacant here, so its
                    // events export to the coordinator's boundary.
                    engine.pad_components(1);
                    for cc in 0..chips {
                        if cc == c {
                            // Zero rounds up front; released
                            // admissions append them at run time.
                            let mut sequencer =
                                self.sequencer_for(c, loads, 0, &parts, interconnect_id);
                            if !loads[c].programs.is_empty() {
                                sequencer.notify = Some(buffer_id);
                            }
                            let id = engine.add_component(sequencer);
                            assert_eq!(id, sequencer_ids[c]);
                        } else {
                            engine.pad_components(1);
                        }
                    }
                    // The buffer and source slots: vacant everywhere —
                    // the boundary plays both roles, and `RoundDone`
                    // reports addressed at the buffer slot export.
                    engine.pad_components(2);
                    engine.schedule(SimTime::ZERO, sequencer_ids[c], ChipEvent::Kick);
                    session.drive(&mut engine);
                    self.chip_outcome(&mut engine, &parts, sequencer_ids[c])
                }
            })
            .collect();
        let outcomes = pim_engine::run_sharded(shards, &mut boundary);
        let (core, stats) = boundary.into_parts();
        // Serving sharded runs are multi-chip by construction, so
        // links always report.
        self.fold_serving_report(
            loads,
            serving,
            core,
            outcomes,
            Some(stats),
            EngineMode::Sharded { shards: chips },
        )
    }
}

/// Prints a once-per-process note that a sharding request fell back
/// to the single-threaded engine. The report still records the
/// effective mode ([`SimReport::engine`]); the note exists so
/// interactive runs and benchmark logs surface the fallback without
/// anyone inspecting report metadata.
#[cfg(feature = "sharded")]
fn note_shard_fallback(reason: &str) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static NOTED: AtomicBool = AtomicBool::new(false);
    if !NOTED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "pim-sim note: sharded execution was requested, but {reason}; \
             running on the single-threaded engine (reported once per process)"
        );
    }
}

/// Diagnoses a stalled system: the first chip (by index) with an
/// unfinished core names the deadlock — its lowest-index blocked core
/// waits on a recv whose send never executed. Chips that merely
/// starved (their upstream producer is the deadlocked one, possibly
/// at a lower index) have no active cores and are skipped.
fn deadlock_of(outcomes: &[ChipOutcome]) -> SimError {
    for outcome in outcomes.iter().filter(|o| !o.sequencer.graph.all_complete()) {
        for stage in &outcome.stalled_cores {
            for (i, core) in stage.iter().enumerate() {
                if !core.finished {
                    let tag = core.blocked.expect("unfinished cores block on recv");
                    return SimError::Deadlock { core: CoreId(i), tag };
                }
            }
        }
    }
    // Hand-off cycles are rejected up front, so an incomplete system
    // always contains at least one blocked core.
    unreachable!("incomplete system has no blocked core")
}

/// Component addresses of one chip's shared infrastructure.
struct ChipParts {
    dram: Option<ComponentId>,
    channel: ComponentId,
    bus: ComponentId,
    rendezvous: ComponentId,
}

/// One chip's extracted end-of-run state — everything the report fold
/// needs, detached from any engine so it can cross a shard thread.
struct ChipOutcome {
    sequencer: ChipSequencer,
    channel: MemChannel,
    rendezvous: Rendezvous,
    inline_dram: Option<InlineDram>,
    closed_dram: Option<ClosedLoopDram>,
    /// Cores of stages still in flight when the run stalled, one
    /// vector per running stage in node order — the deadlock
    /// diagnosis walks these.
    stalled_cores: Vec<Vec<CoreComponent>>,
}

/// One queued unit of boundary work in a sharded run.
#[cfg(feature = "sharded")]
#[derive(Debug, Clone, Copy)]
enum TransferKind {
    /// A hop still to be carried over a link.
    Ship { src: usize, dst: usize, bytes: usize, hop: usize },
    /// A terminal delivery to `dst`'s sequencer.
    Arrival { src: usize, dst: usize },
    /// An admitted serving round bound for `dst`'s sequencer
    /// ([`ChipEvent::AppendRound`]): cut by the boundary-resident
    /// request buffer, delivered [`ADMISSION_LATENCY_NS`] later.
    /// Touches no link state — like an [`TransferKind::Arrival`], its
    /// delivery time is final at creation.
    Admission { dst: usize },
}

/// A pending boundary transfer, ordered exactly as the single engine
/// orders its events: primarily by firing time, then by the instant
/// the work was scheduled, then by `(lane, emit)` — a canonical
/// tie-break that is independent of the rendezvous schedule. Fresh
/// exports use their source shard as the lane (equal-instant
/// cross-shard ties fall back to shard id, the order the single
/// engine's chip-major Kick seeding produces for symmetric chips);
/// boundary-relayed hops share one lane past every shard's (relays
/// with equal `(time, scheduled)` are always carried in the same
/// [`LinkBoundary::advance`] pass, so their emission order is already
/// the processing order). Lanes make cross-window ties — which the
/// old global-window protocol could never produce, but lazy pacing
/// can — deterministic.
#[cfg(feature = "sharded")]
#[derive(Debug)]
struct PendingTransfer {
    time: SimTime,
    /// The instant the work was scheduled: its own time for shard
    /// exports (sequencers ship at `now`), the predecessor hop's
    /// instant for relayed hops.
    scheduled: SimTime,
    /// Source shard for fresh exports; `chips` for relayed hops.
    lane: usize,
    /// Per-lane monotone emission counter.
    emit: u64,
    kind: TransferKind,
}

#[cfg(feature = "sharded")]
impl PendingTransfer {
    fn key(&self) -> (SimTime, SimTime, usize, u64) {
        (self.time, self.scheduled, self.lane, self.emit)
    }
}

#[cfg(feature = "sharded")]
impl PartialEq for PendingTransfer {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

#[cfg(feature = "sharded")]
impl Eq for PendingTransfer {}

#[cfg(feature = "sharded")]
impl PartialOrd for PendingTransfer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(feature = "sharded")]
impl Ord for PendingTransfer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Replaces `slot` with `candidate` when it is earlier (or the slot
/// is unset) — the min-fold for optional horizon times.
#[cfg(feature = "sharded")]
fn tighten(slot: &mut Option<SimTime>, candidate: SimTime) {
    let earlier = match *slot {
        Some(current) => candidate < current,
        None => true,
    };
    if earlier {
        *slot = Some(candidate);
    }
}

/// The sharded run's [`pim_engine::Boundary`]: the interconnect
/// lifted out of the engines and driven by the coordinator between
/// windows. All cross-chip `Ship`s export here; hops are carried in
/// the exact `(time, seq)` order the single engine would use, so the
/// link-contention arithmetic — including the order of its f64
/// accumulations — is byte-identical.
///
/// The boundary owns all lookahead knowledge: per-destination
/// horizons come from the tails of in-flight [`PendingTransfer`]s
/// (a hop ready at `t` delivers no earlier than `t` plus its
/// remaining hops' serialization + propagation) and from the shards'
/// frontiers propagated through the *declared* hand-off graph — only
/// a chip whose load declares a hand-off to `dst` can ever ship
/// there, so chips with no inbound producers get an unbounded
/// horizon and run to completion in one window.
#[cfg(feature = "sharded")]
struct LinkBoundary {
    fabric: InterconnectComponent,
    /// The interconnect's global component id (every non-terminal hop
    /// re-targets it).
    me: ComponentId,
    chips: usize,
    /// In-flight (never terminal) hops, in global dispatch order.
    pending: BinaryHeap<Reverse<PendingTransfer>>,
    /// Finalized sequencer deliveries, per destination chip: their
    /// times are exact, so they release lazily and never bound their
    /// destination's horizon.
    ready: Vec<BinaryHeap<Reverse<PendingTransfer>>>,
    /// Per-lane emission counters (`chips + 2`: one per shard, the
    /// relay lane, and the admission lane of the serving frontend).
    emit: Vec<u64>,
    /// `route_bounds[src][dst]`: minimum delivery delay of the
    /// declared `(src, dst)` hand-off over its route, `None` for
    /// pairs no load declares.
    route_bounds: Vec<Vec<Option<f64>>>,
}

#[cfg(feature = "sharded")]
impl LinkBoundary {
    fn new(
        fabric: InterconnectComponent,
        me: ComponentId,
        chips: usize,
        route_bounds: Vec<Vec<Option<f64>>>,
    ) -> Self {
        Self {
            fabric,
            me,
            chips,
            pending: BinaryHeap::new(),
            ready: (0..chips).map(|_| BinaryHeap::new()).collect(),
            emit: vec![0; chips + 2],
            route_bounds,
        }
    }

    /// The admission lane: all serving-frontend admissions share one
    /// lane past every shard's and the relay lane, so equal-instant
    /// ties against genuine transfers resolve the same way every run.
    fn admission_lane(&self) -> usize {
        self.chips + 1
    }

    /// Queues one admitted-round delivery for `dst`, cut at
    /// `scheduled` and delivered at `time`.
    fn push_admission(&mut self, time: SimTime, scheduled: SimTime, dst: usize) {
        let lane = self.admission_lane();
        self.push(time, scheduled, lane, TransferKind::Admission { dst });
    }

    /// Queues boundary work scheduled at instant `scheduled` on
    /// `lane`, classifying terminal ships (`hop` past the route) as
    /// arrivals up front: they touch no link state and their delivery
    /// times are final, so they go straight to their destination's
    /// ready queue.
    fn push(&mut self, time: SimTime, scheduled: SimTime, lane: usize, kind: TransferKind) {
        let kind = match kind {
            TransferKind::Ship { src, dst, hop, .. } if hop >= self.fabric.route_len(src, dst) => {
                TransferKind::Arrival { src, dst }
            }
            other => other,
        };
        let emit = self.emit[lane];
        self.emit[lane] += 1;
        let entry = PendingTransfer { time, scheduled, lane, emit, kind };
        match entry.kind {
            TransferKind::Arrival { dst, .. } | TransferKind::Admission { dst } => {
                self.ready[dst].push(Reverse(entry))
            }
            TransferKind::Ship { .. } => self.pending.push(Reverse(entry)),
        }
    }

    /// Earliest possible delivery instant of an in-flight hop: its
    /// ready time plus full serialization + propagation of every
    /// remaining hop (each hop re-serializes the payload), all
    /// contention-free — the tail bound the dynamic lookahead is
    /// built from.
    fn ship_bound(&self, entry: &PendingTransfer) -> SimTime {
        let TransferKind::Ship { src, dst, bytes, hop } = entry.kind else {
            unreachable!("pending holds only in-flight hops")
        };
        let route = self.fabric.routes[src][dst].as_ref().expect("validated route exists");
        let remaining: f64 = route[hop..]
            .iter()
            .map(|&link| {
                let spec = self.fabric.links[link].spec;
                spec.serialization_ns(bytes) + spec.latency_ns
            })
            .sum();
        entry.time.advance(remaining)
    }

    /// Each chip's earliest possible *future send* instant: its local
    /// frontier or earliest undelivered inbound (an in-flight tail or
    /// a ready arrival can wake it), closed transitively over the
    /// declared hand-off graph — a woken chip forwards influence
    /// downstream, including back to the original sender.
    fn effective_frontiers(&self, frontiers: &[Option<SimTime>]) -> Vec<Option<SimTime>> {
        let mut eff: Vec<Option<SimTime>> = frontiers.to_vec();
        for Reverse(entry) in &self.pending {
            let TransferKind::Ship { dst, .. } = entry.kind else {
                unreachable!("pending holds only in-flight hops")
            };
            tighten(&mut eff[dst], self.ship_bound(entry));
        }
        for (dst, queue) in self.ready.iter().enumerate() {
            if let Some(Reverse(front)) = queue.peek() {
                tighten(&mut eff[dst], front.time);
            }
        }
        // Bellman-Ford over strictly positive edge weights: chips are
        // few, the exact fixpoint is cheap.
        loop {
            let mut changed = false;
            for src in 0..self.chips {
                let Some(from) = eff[src] else { continue };
                for (dst, bound) in self.route_bounds[src].iter().enumerate() {
                    let Some(bound) = *bound else { continue };
                    let via = from.advance(bound);
                    let earlier = match eff[dst] {
                        Some(current) => via < current,
                        None => true,
                    };
                    if earlier {
                        eff[dst] = Some(via);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        eff
    }

    /// Carries the front pending hop over its next link if no future
    /// export can precede it — below the minimum effective frontier in
    /// `eff`, no chip can emit new boundary work, so processing in
    /// `(time, scheduled, lane, emit)` order reproduces the single
    /// engine's link arithmetic exactly. Returns whether a hop was
    /// carried; bounds only grow as hops are carried, so callers
    /// looping until `false` terminate.
    fn carry_front_if_safe(&mut self, eff: &[Option<SimTime>]) -> bool {
        let safe = eff.iter().flatten().min().copied();
        let Some(Reverse(front)) = self.pending.peek() else { return false };
        let carriable = match safe {
            Some(safe) => front.time < safe,
            None => true,
        };
        if !carriable {
            return false;
        }
        let Reverse(entry) = self.pending.pop().expect("peeked entry exists");
        let TransferKind::Ship { src, dst, bytes, hop } = entry.kind else {
            unreachable!("pending holds only in-flight hops")
        };
        let (time, _target, payload) = self.fabric.relay(self.me, entry.time, src, dst, bytes, hop);
        let ChipEvent::Ship { src, dst, bytes, hop } = payload else {
            unreachable!("relay emits the next hop for non-terminal ships")
        };
        self.push(time, entry.time, self.chips, TransferKind::Ship { src, dst, bytes, hop });
        true
    }

    /// Per-destination release horizons for the effective frontiers
    /// `eff`: the tails of in-flight hops destined there, and every
    /// declared producer's frontier advanced by its route bound.
    fn horizons_from(&self, eff: &[Option<SimTime>]) -> Vec<Option<SimTime>> {
        (0..self.chips)
            .map(|dst| {
                let mut horizon: Option<SimTime> = None;
                // In-flight tails destined here.
                for Reverse(entry) in &self.pending {
                    let TransferKind::Ship { dst: ship_dst, .. } = entry.kind else {
                        unreachable!("pending holds only in-flight hops")
                    };
                    if ship_dst == dst {
                        tighten(&mut horizon, self.ship_bound(entry));
                    }
                }
                // Declared producers, at their effective frontiers.
                for (src, from) in eff.iter().enumerate() {
                    if let (Some(from), Some(bound)) = (*from, self.route_bounds[src][dst]) {
                        tighten(&mut horizon, from.advance(bound));
                    }
                }
                horizon
            })
            .collect()
    }

    /// The accumulated per-link statistics, for the report fold.
    fn into_stats(self) -> Vec<LinkStats> {
        self.fabric.stats
    }
}

#[cfg(feature = "sharded")]
impl pim_engine::Boundary<ChipEvent> for LinkBoundary {
    fn next_time(&self) -> Option<SimTime> {
        let mut next = self.pending.peek().map(|Reverse(p)| p.time);
        for queue in &self.ready {
            if let Some(Reverse(front)) = queue.peek() {
                tighten(&mut next, front.time);
            }
        }
        next
    }

    fn advance(&mut self, frontiers: &[Option<SimTime>]) {
        // Carry every hop that can no longer be preceded by any future
        // export, recomputing the frontier after each step (bounds
        // only grow as hops are carried, so the loop is monotone and
        // terminates).
        loop {
            let eff = self.effective_frontiers(frontiers);
            if !self.carry_front_if_safe(&eff) {
                break;
            }
        }
    }

    fn horizons(&self, frontiers: &[Option<SimTime>]) -> Vec<Option<SimTime>> {
        let eff = self.effective_frontiers(frontiers);
        self.horizons_from(&eff)
    }

    fn release(&mut self, shard: usize, horizon: Option<SimTime>) -> Vec<RemoteEvent<ChipEvent>> {
        let mut inbox = Vec::new();
        while let Some(Reverse(front)) = self.ready[shard].peek() {
            let deliverable = match horizon {
                Some(horizon) => front.time < horizon,
                None => true,
            };
            if !deliverable {
                break;
            }
            let Reverse(entry) = self.ready[shard].pop().expect("peeked entry exists");
            let (dst, payload) = match entry.kind {
                TransferKind::Arrival { src, dst } => (dst, ChipEvent::HandoffIn { src }),
                TransferKind::Admission { dst } => (dst, ChipEvent::AppendRound),
                TransferKind::Ship { .. } => {
                    unreachable!("ready queues hold only terminal deliveries")
                }
            };
            inbox.push(RemoteEvent {
                time: entry.time,
                target: self.fabric.sequencers[dst],
                payload,
            });
        }
        inbox
    }

    fn absorb(&mut self, shard: usize, exports: Vec<RemoteEvent<ChipEvent>>) {
        // Every export's firing time equals its scheduling instant
        // (sequencers ship at `now`); the source shard is its lane.
        for event in exports {
            assert_eq!(event.target, self.me, "cross-shard events all address the interconnect");
            let ChipEvent::Ship { src, dst, bytes, hop } = event.payload else {
                unreachable!("interconnect received {:?}", event.payload)
            };
            self.push(event.time, event.time, shard, TransferKind::Ship { src, dst, bytes, hop });
        }
    }
}

/// An armed flush timer on the serving boundary, ordered `(due,
/// emit)` — `emit` is a frontend-wide monotone counter, so equal-due
/// timers fire in arming order, exactly as the single engine's event
/// queue orders equal-instant self-events.
#[cfg(feature = "sharded")]
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct TimerEntry {
    due: SimTime,
    emit: u64,
    generation: u64,
}

/// An absorbed round-completion report awaiting frontend processing,
/// ordered `(time, lane, emit)`: equal-instant reports from different
/// shards order by shard index — the order the single engine's
/// chip-major component layout dispatches equal-instant `RoundDone`s
/// in — and reports from one shard keep their export order.
#[cfg(feature = "sharded")]
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct InboxDone {
    time: SimTime,
    lane: usize,
    emit: u64,
    chip: usize,
}

/// The [`AdmissionSink`] of the sharded serving frontend: admissions
/// become [`TransferKind::Admission`] deliveries on the boundary's
/// ready queues (released to their shards under the usual horizon
/// discipline), deadline timers land on the frontend's own timer
/// heap.
#[cfg(feature = "sharded")]
struct FrontendSink<'a> {
    link: &'a mut LinkBoundary,
    timers: &'a mut BinaryHeap<Reverse<TimerEntry>>,
    timer_emit: &'a mut u64,
    active: &'a [usize],
}

#[cfg(feature = "sharded")]
impl AdmissionSink for FrontendSink<'_> {
    fn admit_round(&mut self, cut_ns: f64) {
        let time = SimTime::from_ns(cut_ns + ADMISSION_LATENCY_NS);
        let scheduled = SimTime::from_ns(cut_ns);
        // Ascending chip order — the order the single engine's buffer
        // schedules its per-sequencer `AppendRound`s in.
        for &dst in self.active {
            self.link.push_admission(time, scheduled, dst);
        }
    }

    fn arm_deadline(&mut self, due_ns: f64, generation: u64) {
        let emit = *self.timer_emit;
        *self.timer_emit += 1;
        self.timers.push(Reverse(TimerEntry { due: SimTime::from_ns(due_ns), emit, generation }));
    }
}

/// The sharded *serving* boundary: a [`LinkBoundary`] plus the
/// admission frontend — the request source (as a pre-generated
/// arrival stream), the [`BufferCore`] state machine, its flush
/// timers, and the inbox of absorbed round completions. The frontend
/// replays the exact event interleaving the single engine's buffer
/// component sees, by merging its three input streams (arrivals,
/// timers, completions) in time order and only consuming an input
/// when no shard can still produce an earlier round completion.
///
/// Dynamic graph growth is safe because *potential future admissions*
/// are a horizon term: the earliest instant the buffer could next cut
/// a batch (next arrival, earliest armed timer, or — when a due batch
/// waits on capacity — the earliest possible round completion),
/// advanced by [`ADMISSION_LATENCY_NS`], bounds every active chip's
/// effective frontier and release horizon exactly like an in-flight
/// transfer's ship-tail. The admission delay is what keeps the
/// protocol live: a cut at `t` delivers strictly after `t`, so
/// granting a shard a window up to the admission bound always lets it
/// pass the instant that triggers the admission.
#[cfg(feature = "sharded")]
struct ServingBoundary {
    link: LinkBoundary,
    core: BufferCore,
    /// The request buffer's global component id: shard exports
    /// targeting it are frontend input, everything else is fabric
    /// traffic.
    buffer_id: ComponentId,
    /// Active chip indices (non-empty programs), ascending.
    active: Vec<usize>,
    /// Pre-generated absolute arrival instants, ns, ascending.
    arrivals: Vec<f64>,
    /// Next unconsumed arrival.
    next_arrival: usize,
    /// Armed flush timers, stale generations included (they pop as
    /// no-ops, exactly like the single engine's stale
    /// `FlushDeadline`s).
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_emit: u64,
    /// Absorbed round completions not yet fed to the core.
    inbox: BinaryHeap<Reverse<InboxDone>>,
    /// Per-shard inbox emission counters.
    inbox_emit: Vec<u64>,
}

#[cfg(feature = "sharded")]
impl ServingBoundary {
    fn new(
        link: LinkBoundary,
        core: BufferCore,
        buffer_id: ComponentId,
        active: Vec<usize>,
        arrivals: Vec<f64>,
    ) -> Self {
        let chips = link.chips;
        let mut this = Self {
            link,
            core,
            buffer_id,
            active,
            arrivals,
            next_arrival: 0,
            timers: BinaryHeap::new(),
            timer_emit: 0,
            inbox: BinaryHeap::new(),
            inbox_emit: vec![0; chips],
        };
        if this.arrivals.is_empty() {
            // An empty stream drains at t = 0, exactly like the single
            // engine's source scheduling `SourceDrained` off its Kick.
            let mut sink = FrontendSink {
                link: &mut this.link,
                timers: &mut this.timers,
                timer_emit: &mut this.timer_emit,
                active: &this.active,
            };
            this.core.on_source_drained(0.0, &mut sink);
        }
        this
    }

    /// The earliest instant the buffer could next cut a batch, given
    /// that future round completions arrive no earlier than `gate`:
    /// the next arrival, the earliest armed timer (stale timers
    /// included — a lower bound may be conservative), and, when a due
    /// batch is waiting on round capacity, the earliest absorbed or
    /// future completion. `None` means no future admission is
    /// possible.
    fn admission_trigger(&self, gate: Option<SimTime>) -> Option<SimTime> {
        let mut trigger: Option<SimTime> = None;
        if let Some(&at) = self.arrivals.get(self.next_arrival) {
            tighten(&mut trigger, SimTime::from_ns(at));
        }
        if let Some(Reverse(front)) = self.timers.peek() {
            tighten(&mut trigger, front.due);
        }
        if self.core.awaiting_capacity() {
            // Only in this state can a completion move the buffer: a
            // batch is due and every in-flight slot is taken, so the
            // next cut fires off a `RoundDone`.
            if let Some(Reverse(front)) = self.inbox.peek() {
                tighten(&mut trigger, front.time);
            }
            if let Some(gate) = gate {
                tighten(&mut trigger, gate);
            }
        }
        trigger
    }

    /// The boundary's frontier view: the link's effective frontiers
    /// tightened by potential future admissions, plus the *gate* — the
    /// earliest instant any active chip could still emit a round
    /// completion (`None` when every active chip is silent forever).
    /// The gate is computed *before* admission tightening: completions
    /// of already-admitted rounds are bounded by the pre-admission
    /// frontiers, and any admission the frontend performs later is
    /// performed in stream order, so it can only create completions at
    /// or after the instant being consumed.
    fn frontier_view(
        &self,
        frontiers: &[Option<SimTime>],
    ) -> (Vec<Option<SimTime>>, Option<SimTime>) {
        let mut eff = self.link.effective_frontiers(frontiers);
        let mut gate: Option<SimTime> = None;
        for &c in &self.active {
            // `None` frontiers contribute nothing: a permanently
            // silent chip never reports another round.
            if let Some(t) = eff[c] {
                tighten(&mut gate, t);
            }
        }
        if let Some(trigger) = self.admission_trigger(gate) {
            let adm = trigger.advance(ADMISSION_LATENCY_NS);
            // One pass suffices: every chip that can ship is active
            // (idle chips cannot declare hand-offs), so any secondary
            // influence `adm + route bound` exceeds the `adm` every
            // active chip is already tightened to.
            for &c in &self.active {
                tighten(&mut eff[c], adm);
            }
        }
        (eff, gate)
    }

    /// Consumes the earliest frontend input strictly below `gate` (a
    /// `None` gate consumes freely): an absorbed completion, an armed
    /// timer, or the next arrival — completions before timers before
    /// arrivals on equal instants, a fixed convention for a tie no
    /// continuous-time trace produces. Returns whether an input was
    /// consumed.
    fn pump_one(&mut self, gate: Option<SimTime>) -> bool {
        let arrival = self.arrivals.get(self.next_arrival).map(|&ns| SimTime::from_ns(ns));
        let timer = self.timers.peek().map(|Reverse(t)| t.due);
        let done = self.inbox.peek().map(|Reverse(d)| d.time);
        // Class-priority min: inbox (0) < timer (1) < arrival (2).
        let mut pick: Option<(SimTime, u8)> = None;
        for (time, class) in
            [(done, 0u8), (timer, 1), (arrival, 2)].into_iter().filter_map(|(t, c)| Some((t?, c)))
        {
            if pick.is_none_or(|best| (time, class) < best) {
                pick = Some((time, class));
            }
        }
        let Some((time, class)) = pick else { return false };
        if let Some(gate) = gate {
            if time >= gate {
                return false;
            }
        }
        match class {
            0 => {
                let Reverse(done) = self.inbox.pop().expect("peeked entry exists");
                let mut sink = FrontendSink {
                    link: &mut self.link,
                    timers: &mut self.timers,
                    timer_emit: &mut self.timer_emit,
                    active: &self.active,
                };
                self.core.on_round_done(done.chip, done.time.as_ns(), &mut sink);
            }
            1 => {
                let Reverse(timer) = self.timers.pop().expect("peeked entry exists");
                let mut sink = FrontendSink {
                    link: &mut self.link,
                    timers: &mut self.timers,
                    timer_emit: &mut self.timer_emit,
                    active: &self.active,
                };
                self.core.on_flush_deadline(timer.generation, timer.due.as_ns(), &mut sink);
            }
            _ => {
                let at = self.arrivals[self.next_arrival];
                self.next_arrival += 1;
                let last = self.next_arrival == self.arrivals.len();
                let mut sink = FrontendSink {
                    link: &mut self.link,
                    timers: &mut self.timers,
                    timer_emit: &mut self.timer_emit,
                    active: &self.active,
                };
                self.core.on_new_request(at, &mut sink);
                if last {
                    // The single engine schedules `SourceDrained` at
                    // the last arrival's instant, right behind it.
                    self.core.on_source_drained(at, &mut sink);
                }
            }
        }
        true
    }

    /// Tears the boundary down into the admission ledger and the
    /// accumulated link statistics, for the report fold.
    fn into_parts(self) -> (BufferCore, Vec<LinkStats>) {
        (self.core, self.link.into_stats())
    }
}

#[cfg(feature = "sharded")]
impl pim_engine::Boundary<ChipEvent> for ServingBoundary {
    fn next_time(&self) -> Option<SimTime> {
        let mut next = self.link.next_time();
        if let Some(&ns) = self.arrivals.get(self.next_arrival) {
            tighten(&mut next, SimTime::from_ns(ns));
        }
        if let Some(Reverse(front)) = self.timers.peek() {
            tighten(&mut next, front.due);
        }
        if let Some(Reverse(front)) = self.inbox.peek() {
            tighten(&mut next, front.time);
        }
        next
    }

    fn advance(&mut self, frontiers: &[Option<SimTime>]) {
        // Interleave hop-carrying with frontend consumption to a joint
        // fixpoint: a carried hop can raise the gate (unblocking the
        // frontend), and a consumed arrival can queue an admission
        // (tightening the frontiers hop-carrying runs under). Both
        // steps only consume monotone state, so the loop terminates.
        loop {
            let (eff, gate) = self.frontier_view(frontiers);
            if self.link.carry_front_if_safe(&eff) {
                continue;
            }
            if self.pump_one(gate) {
                continue;
            }
            break;
        }
    }

    fn horizons(&self, frontiers: &[Option<SimTime>]) -> Vec<Option<SimTime>> {
        let (eff, gate) = self.frontier_view(frontiers);
        let mut horizons = self.link.horizons_from(&eff);
        // A future admission is delivered to every active chip
        // directly (no route hops), so it bounds their release
        // horizons as well as their frontiers.
        if let Some(trigger) = self.admission_trigger(gate) {
            let adm = trigger.advance(ADMISSION_LATENCY_NS);
            for &c in &self.active {
                tighten(&mut horizons[c], adm);
            }
        }
        horizons
    }

    fn release(&mut self, shard: usize, horizon: Option<SimTime>) -> Vec<RemoteEvent<ChipEvent>> {
        self.link.release(shard, horizon)
    }

    fn absorb(&mut self, shard: usize, exports: Vec<RemoteEvent<ChipEvent>>) {
        let mut ships = Vec::new();
        for event in exports {
            if event.target == self.buffer_id {
                let ChipEvent::RoundDone { chip } = event.payload else {
                    unreachable!("request buffer received {:?}", event.payload)
                };
                let emit = self.inbox_emit[shard];
                self.inbox_emit[shard] += 1;
                self.inbox.push(Reverse(InboxDone { time: event.time, lane: shard, emit, chip }));
            } else {
                ships.push(event);
            }
        }
        self.link.absorb(shard, ships);
    }
}

/// Dispatches one chip's `(batch, partition)` stages from the ready
/// set of its stage graph: barrier-chained by default, dependency- and
/// claim-driven under interleaving. See the module docs.
pub(crate) struct ChipSequencer {
    chip_index: usize,
    programs: Vec<ChipProgram>,
    timing: CoreTiming,
    channel: ComponentId,
    bus: ComponentId,
    rendezvous: ComponentId,
    interconnect: ComponentId,
    /// Per-round boundary transfers, one per downstream consumer.
    handoffs: Vec<Handoff>,
    /// Per-upstream-producer hand-off ledger: `(source chip,
    /// hand-offs received from it)`.
    upstream: Vec<(usize, usize)>,
    rounds: usize,
    schedule: ScheduleMode,
    /// Serving mode: the request buffer to notify with
    /// [`ChipEvent::RoundDone`] each time a round fully drains.
    /// `None` for fixed-round (closed-loop) runs.
    notify: Option<ComponentId>,
    /// The stage dependency graph driving dispatch.
    pub(crate) graph: StageGraph,
    /// In-flight stages, indexed by graph node.
    pub(crate) running: Vec<Option<RunningStage>>,
    /// Per-round timestamp at which the round's head stage became
    /// blocked purely on upstream hand-offs.
    wait_from: Vec<Option<f64>>,
    pub(crate) handoff_wait_ns: f64,
    pub(crate) records: Vec<StageRecord>,
}

/// One in-flight stage: its spawned cores and running accounting.
pub(crate) struct RunningStage {
    round: usize,
    partition: usize,
    pub(crate) cores: Vec<ComponentId>,
    done: usize,
    start_ns: f64,
    end_ns: f64,
    replace_max_ns: f64,
    activity: Vec<CoreActivity>,
}

/// One executed (round, partition) stage of a chip.
pub(crate) struct StageRecord {
    pub(crate) round: usize,
    pub(crate) partition: usize,
    pub(crate) start_ns: f64,
    pub(crate) end_ns: f64,
    pub(crate) replace_ns: f64,
    pub(crate) activity: Vec<CoreActivity>,
}

impl ChipSequencer {
    /// Starts every ready stage, looping because zero-core stages
    /// complete at their start instant and may unlock successors.
    fn dispatch(&mut self, me: ComponentId, ctx: &mut EngineCtx<'_, ChipEvent>) {
        loop {
            let ready = self.graph.take_ready();
            if ready.is_empty() {
                break;
            }
            for node in ready {
                self.start_stage(node, me, ctx);
            }
        }
    }

    /// Stamps the moment each round's head stage becomes blocked
    /// purely on upstream hand-offs (graph deps done, externals not).
    fn refresh_upstream_wait(&mut self, now_ns: f64) {
        if self.upstream.is_empty() || self.programs.is_empty() {
            return;
        }
        for b in 0..self.rounds {
            if self.wait_from[b].is_none() && self.graph.blocked_on_external(self.graph.node(b, 0))
            {
                self.wait_from[b] = Some(now_ns);
            }
        }
    }

    /// Spawns stage `node`'s cores. In barrier mode the shared
    /// resources are barrier-reset first, exactly as the single-chip
    /// simulator's partition loop did: barriers first, then cores in
    /// index order, all at the current instant.
    fn start_stage(&mut self, node: usize, me: ComponentId, ctx: &mut EngineCtx<'_, ChipEvent>) {
        let (round, partition) = self.graph.coords(node);
        let now = ctx.now();
        if partition == 0 {
            if let Some(since) = self.wait_from[round].take() {
                self.handoff_wait_ns += (now.as_ns() - since).max(0.0);
            }
        }
        if self.schedule == ScheduleMode::Barrier {
            for shared in [self.channel, self.bus, self.rendezvous] {
                ctx.schedule(now, shared, ChipEvent::Barrier);
            }
        }
        // Overlapping stages get disjoint rendezvous tag spaces; the
        // barrier chain never overlaps, and its per-stage rendezvous
        // reset expects the program's raw tags. The stage id must fit
        // the 16 offset bits — overflow would silently alias two
        // stages' tag spaces, so fail loudly instead.
        let tag_offset = match self.schedule {
            ScheduleMode::Barrier => 0,
            ScheduleMode::Interleaved => {
                assert!(
                    node < 1 << 16,
                    "interleaved runs support at most 65536 stages (rounds x partitions); \
                     stage {node} would alias another stage's rendezvous tag space"
                );
                (node as u64) << 48
            }
        };
        let program = &self.programs[partition];
        let cores: Vec<ComponentId> = (0..program.cores())
            .map(|c| {
                let stream = program.core(CoreId(c)).instructions().to_vec();
                let id = ctx.add_component(CoreComponent::new(
                    stream,
                    now,
                    self.timing,
                    self.channel,
                    self.bus,
                    self.rendezvous,
                    me,
                    c,
                    node,
                    tag_offset,
                ));
                ctx.schedule(now, id, ChipEvent::Step);
                id
            })
            .collect();
        let empty = cores.is_empty();
        self.running[node] = Some(RunningStage {
            round,
            partition,
            activity: vec![CoreActivity::default(); program.cores()],
            cores,
            done: 0,
            start_ns: now.as_ns(),
            end_ns: now.as_ns(),
            replace_max_ns: now.as_ns(),
        });
        // A zero-core program has nothing to wait for: complete the
        // stage at its start instant (the CoreDone arm would otherwise
        // never fire and the stage would hang).
        if empty {
            self.finish_stage(node, ctx);
        }
    }

    /// Folds a drained stage into the records, ships the chip's
    /// hand-offs when the stage closes a round, and releases the
    /// stage's graph node (the caller's dispatch loop picks up
    /// whatever that unblocks).
    fn finish_stage(&mut self, node: usize, ctx: &mut EngineCtx<'_, ChipEvent>) {
        let stage = self.running[node].take().expect("finished stage was running");
        self.records.push(StageRecord {
            round: stage.round,
            partition: stage.partition,
            start_ns: stage.start_ns,
            end_ns: stage.end_ns,
            replace_ns: stage.replace_max_ns - stage.start_ns,
            activity: stage.activity,
        });
        if stage.partition + 1 == self.graph.partitions() {
            // Round complete: ship the boundary activations to every
            // downstream consumer.
            let now = ctx.now();
            for handoff in &self.handoffs {
                ctx.schedule(
                    now,
                    self.interconnect,
                    ChipEvent::Ship {
                        src: self.chip_index,
                        dst: handoff.dst,
                        bytes: handoff.bytes,
                        hop: 0,
                    },
                );
            }
            if let Some(buffer) = self.notify {
                ctx.schedule(now, buffer, ChipEvent::RoundDone { chip: self.chip_index });
            }
        }
        if self.schedule == ScheduleMode::Interleaved {
            // The stage's receivers have all completed; drop its
            // rendezvous tag bucket so the delivered map stays bounded
            // by the stages in flight (barrier mode clears at each
            // stage's Barrier instead).
            ctx.schedule(ctx.now(), self.rendezvous, ChipEvent::RetireStage { stage: node as u64 });
        }
        self.graph.complete(node);
        self.refresh_upstream_wait(ctx.now().as_ns());
    }
}

impl Component<ChipEvent> for ChipSequencer {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        match event.payload {
            ChipEvent::Kick => {
                self.dispatch(event.target, ctx);
                self.refresh_upstream_wait(event.time.as_ns());
            }
            ChipEvent::HandoffIn { src } => {
                let entry = self
                    .upstream
                    .iter_mut()
                    .find(|(s, _)| *s == src)
                    .expect("hand-off arrives only from declared producers");
                entry.1 += 1;
                let batch = entry.1 - 1;
                if batch < self.rounds && !self.programs.is_empty() {
                    let node = self.graph.node(batch, 0);
                    self.graph.satisfy_external(node);
                    if !self.graph.blocked_on_external(node) {
                        // The last missing input just landed: close the
                        // round's upstream-wait window.
                        if let Some(since) = self.wait_from[batch].take() {
                            self.handoff_wait_ns += (event.time.as_ns() - since).max(0.0);
                        }
                    }
                    self.dispatch(event.target, ctx);
                }
            }
            ChipEvent::AppendRound => {
                // Serving mode only: the request buffer admitted one
                // more batch. Grow the live stage graph by a round and
                // credit any hand-offs that were banked before the
                // round existed (a fast upstream may run ahead of
                // admission).
                assert!(!self.programs.is_empty(), "idle chips receive no rounds");
                let b = self.rounds;
                self.rounds += 1;
                self.graph.append_round(&self.programs, self.schedule, self.upstream.len());
                for _ in 0..self.graph.partitions() {
                    self.running.push(None);
                }
                self.wait_from.push(None);
                let node = self.graph.node(b, 0);
                let banked = self.upstream.iter().filter(|&&(_, received)| received > b).count();
                for _ in 0..banked {
                    self.graph.satisfy_external(node);
                }
                self.dispatch(event.target, ctx);
                self.refresh_upstream_wait(event.time.as_ns());
            }
            ChipEvent::CoreDone { stage, core_index, activity, replace_done_ns } => {
                let running = self.running[stage].as_mut().expect("core reports a live stage");
                running.activity[core_index] = activity;
                running.end_ns = running.end_ns.max(event.time.as_ns());
                running.replace_max_ns = running.replace_max_ns.max(replace_done_ns);
                running.done += 1;
                if running.done == running.cores.len() {
                    self.finish_stage(stage, ctx);
                    self.dispatch(event.target, ctx);
                }
            }
            other => unreachable!("sequencer received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The inter-chip interconnect: carries each hand-off hop-by-hop over
/// the topology's precomputed shortest routes. Every directed link has
/// its own availability timestamp, so transfers sharing a link
/// serialize — contention is modelled, not approximated by a flat
/// latency.
pub(crate) struct InterconnectComponent {
    links: Vec<Link>,
    free_ns: Vec<f64>,
    /// `routes[src][dst]` is the link-index path, `None` when
    /// unreachable (validation rejects such topologies up front).
    routes: Vec<Vec<Option<Vec<usize>>>>,
    sequencers: Vec<ComponentId>,
    pub(crate) stats: Vec<LinkStats>,
}

impl InterconnectComponent {
    pub(crate) fn new(topology: &Topology, sequencers: &[ComponentId]) -> Self {
        let chips = topology.chips();
        let links = topology.links().to_vec();
        let routes = (0..chips)
            .map(|src| (0..chips).map(|dst| topology.route(src, dst)).collect())
            .collect();
        let stats = links
            .iter()
            .map(|l| LinkStats { src: l.src, dst: l.dst, ..LinkStats::default() })
            .collect();
        Self {
            free_ns: vec![0.0; links.len()],
            links,
            routes,
            sequencers: sequencers.to_vec(),
            stats,
        }
    }

    /// The number of link hops on the validated route from `src` to
    /// `dst`.
    #[cfg(feature = "sharded")]
    fn route_len(&self, src: usize, dst: usize) -> usize {
        self.routes[src][dst].as_ref().expect("validated route exists").len()
    }

    /// Carries one `Ship` one hop, returning the follow-on event to
    /// schedule: the terminal hand-off to the destination sequencer,
    /// or — after claiming the next link (serialization, queueing,
    /// stats) — the next hop back to the interconnect (`me`).
    /// Separated from `on_event` so the sharded boundary can drive
    /// the identical arithmetic without an engine.
    fn relay(
        &mut self,
        me: ComponentId,
        time: SimTime,
        src: usize,
        dst: usize,
        bytes: usize,
        hop: usize,
    ) -> (SimTime, ComponentId, ChipEvent) {
        let route = self.routes[src][dst].as_ref().expect("validated route exists");
        if hop >= route.len() {
            return (time, self.sequencers[dst], ChipEvent::HandoffIn { src });
        }
        let link = route[hop];
        let spec = self.links[link].spec;
        let now = time.as_ns();
        let start = now.max(self.free_ns[link]);
        let serialization = spec.serialization_ns(bytes);
        self.free_ns[link] = start + serialization;
        let stats = &mut self.stats[link];
        stats.transfers += 1;
        stats.bytes += bytes as u64;
        stats.busy_ns += serialization;
        stats.wait_ns += start - now;
        (
            SimTime::from_ns(start + serialization + spec.latency_ns),
            me,
            ChipEvent::Ship { src, dst, bytes, hop: hop + 1 },
        )
    }
}

impl Component<ChipEvent> for InterconnectComponent {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        match event.payload {
            ChipEvent::Ship { src, dst, bytes, hop } => {
                let (time, target, payload) =
                    self.relay(event.target, event.time, src, dst, bytes, hop);
                ctx.schedule(time, target, payload);
            }
            other => unreachable!("interconnect received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::{Instruction as I, Tag};

    fn mvm_program(cores: usize, waves: usize) -> ChipProgram {
        let mut program = ChipProgram::new(cores);
        for c in 0..4 {
            program.core_mut(CoreId(c)).push(I::Mvmul { waves, activations: 64, node: 0 });
        }
        program
    }

    /// `waves` MVM waves on cores `[from, to)` of a `total`-core chip.
    fn mvm_on_cores(from: usize, to: usize, total: usize, waves: usize) -> ChipProgram {
        let mut program = ChipProgram::new(total);
        for c in from..to {
            program.core_mut(CoreId(c)).push(I::Mvmul { waves, activations: 64, node: 0 });
        }
        program
    }

    #[test]
    fn single_chip_system_equals_chip_simulator() {
        let chip = ChipSpec::chip_s();
        let program = mvm_program(chip.cores, 100);
        let system = SystemSimulator::new(chip.clone(), Topology::single())
            .run(&[ChipLoad::new(std::slice::from_ref(&program))], 1, 1)
            .unwrap();
        let single =
            crate::ChipSimulator::new(chip).run(std::slice::from_ref(&program), 1).unwrap();
        assert_eq!(system, single);
        assert!(system.chips.is_none());
        assert!(system.links.is_none());
    }

    #[test]
    fn batch_shard_chips_run_concurrently() {
        let chip = ChipSpec::chip_s();
        let program = mvm_program(chip.cores, 200);
        let one = SystemSimulator::new(chip.clone(), Topology::single())
            .run(&[ChipLoad::new(std::slice::from_ref(&program))], 1, 1)
            .unwrap();
        let loads = [
            ChipLoad::new(std::slice::from_ref(&program)),
            ChipLoad::new(std::slice::from_ref(&program)),
        ];
        let two = SystemSimulator::new(chip, Topology::ring(2)).run(&loads, 1, 2).unwrap();
        // Two identical shards overlap perfectly: same makespan, twice
        // the work recorded.
        assert!((two.makespan_ns - one.makespan_ns).abs() < 1e-9);
        assert_eq!(two.partitions.len(), 2 * one.partitions.len());
        assert_eq!(two.chips.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn pipeline_rounds_overlap_across_chips() {
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 500);
        let rounds = 4;
        // One chip runs both stages serially, every round.
        let both = [stage.clone(), stage.clone()];
        let serial = SystemSimulator::new(chip.clone(), Topology::single())
            .run(&[ChipLoad::new(&both)], rounds, 1)
            .unwrap();
        // Two chips pipeline one stage each with a per-round hand-off.
        let loads = [
            ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(1, 4096),
            ChipLoad::new(std::slice::from_ref(&stage)),
        ];
        let pipelined =
            SystemSimulator::new(chip, Topology::ring(2)).run(&loads, rounds, 1).unwrap();
        assert!(
            pipelined.makespan_ns < serial.makespan_ns,
            "2-chip pipeline ({} ns) must beat 1 chip ({} ns)",
            pipelined.makespan_ns,
            serial.makespan_ns
        );
        // The downstream chip stalls for the pipeline fill plus link
        // time, and the link carried one transfer per round.
        let chips = pipelined.chips.as_ref().unwrap();
        assert!(chips[1].handoff_wait_ns > 0.0);
        let links = pipelined.links.as_ref().unwrap();
        let carried: u64 = links.iter().map(|l| l.bytes).sum();
        assert_eq!(carried, rounds as u64 * 4096);
    }

    #[test]
    fn handoff_gates_downstream_chip() {
        // The downstream chip must not start before the hand-off
        // lands: serialization + latency of the 2-chip ring link.
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 10);
        let bytes = 8192;
        let loads = [
            ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(1, bytes),
            ChipLoad::new(std::slice::from_ref(&stage)),
        ];
        let report =
            SystemSimulator::new(chip.clone(), Topology::ring(2)).run(&loads, 1, 1).unwrap();
        let spec = pim_arch::LinkSpec::board();
        let stage_ns = 10.0 * chip.crossbar.mvm_latency_ns;
        let expected_start = stage_ns + spec.serialization_ns(bytes) + spec.latency_ns;
        let downstream = &report.partitions[1];
        assert!(
            (downstream.start_ns - expected_start).abs() < 1e-6,
            "downstream started at {} vs expected {expected_start}",
            downstream.start_ns
        );
    }

    #[test]
    fn rejects_mismatched_loads() {
        let chip = ChipSpec::chip_s();
        let program = mvm_program(chip.cores, 1);
        let err = SystemSimulator::new(chip.clone(), Topology::ring(2))
            .run(&[ChipLoad::new(std::slice::from_ref(&program))], 1, 1)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
        // A hand-off from an idle chip is meaningless.
        let idle =
            [ChipLoad::new(&[]).with_handoff(1, 64), ChipLoad::new(std::slice::from_ref(&program))];
        let err =
            SystemSimulator::new(chip.clone(), Topology::ring(2)).run(&idle, 1, 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
        // Duplicate hand-offs to one destination would double-count
        // the consumer's per-round gating.
        let doubled = [
            ChipLoad::new(std::slice::from_ref(&program)).with_handoff(1, 64).with_handoff(1, 32),
            ChipLoad::new(std::slice::from_ref(&program)),
        ];
        let err = SystemSimulator::new(chip, Topology::ring(2)).run(&doubled, 1, 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(ref r) if r.contains("multiple")), "{err}");
    }

    #[test]
    fn deadlock_is_reported_from_any_chip() {
        let chip = ChipSpec::chip_s();
        let good = mvm_program(chip.cores, 5);
        let mut bad = ChipProgram::new(chip.cores);
        bad.core_mut(CoreId(2)).push(I::Recv { from: CoreId(0), bytes: 64, tag: Tag(404) });
        let loads =
            [ChipLoad::new(std::slice::from_ref(&good)), ChipLoad::new(std::slice::from_ref(&bad))];
        let err = SystemSimulator::new(chip, Topology::ring(2)).run(&loads, 1, 1).unwrap_err();
        assert_eq!(err, SimError::Deadlock { core: CoreId(2), tag: Tag(404) });
    }

    #[test]
    fn deadlocked_producer_behind_a_starved_lower_chip_is_still_diagnosed() {
        // Chip 1 hands off to chip 0 but deadlocks, so chip 0 starves
        // without ever spawning a core. The error must name chip 1's
        // blocked core, not panic on the starved (lower-index) chip.
        let chip = ChipSpec::chip_s();
        let good = mvm_program(chip.cores, 5);
        let mut bad = ChipProgram::new(chip.cores);
        bad.core_mut(CoreId(1)).push(I::Recv { from: CoreId(0), bytes: 64, tag: Tag(500) });
        let loads = [
            ChipLoad::new(std::slice::from_ref(&good)),
            ChipLoad::new(std::slice::from_ref(&bad)).with_handoff(0, 64),
        ];
        let err = SystemSimulator::new(chip, Topology::ring(2)).run(&loads, 2, 1).unwrap_err();
        assert_eq!(err, SimError::Deadlock { core: CoreId(1), tag: Tag(500) });
    }

    #[test]
    fn zero_core_programs_complete_instantly() {
        // The pre-system ChipSimulator returned Ok for a zero-core
        // program; the sequencer must too (its stage has nothing to
        // wait for).
        let chip = ChipSpec::chip_s();
        let empty = ChipProgram::new(0);
        let report = crate::ChipSimulator::new(chip.clone())
            .run(std::slice::from_ref(&empty), 1)
            .expect("zero-core programs must not hang");
        assert_eq!(report.partitions.len(), 1);
        assert_eq!(report.makespan_ns, 0.0);
        assert!(report.partitions[0].core_activity.is_empty());
        // And mixed with real work across rounds.
        let work = mvm_program(chip.cores, 5);
        let report = SystemSimulator::new(chip, Topology::single())
            .run(&[ChipLoad::new(&[empty, work])], 2, 1)
            .unwrap();
        assert_eq!(report.partitions.len(), 4);
        assert!(report.makespan_ns > 0.0);
    }

    #[test]
    fn idle_chips_report_zero_completed_rounds() {
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 5);
        let loads = [ChipLoad::new(std::slice::from_ref(&stage)), ChipLoad::new(&[])];
        let report = SystemSimulator::new(chip, Topology::ring(2)).run(&loads, 3, 1).unwrap();
        let chips = report.chips.as_ref().unwrap();
        assert_eq!(chips[0].rounds, 3, "active chip completed every round");
        assert_eq!(chips[1].rounds, 0, "idle chip completed none");
        assert_eq!(chips[1].partitions, 0);
    }

    #[test]
    fn handoff_cycles_are_rejected_up_front() {
        // A cyclic hand-off chain would starve every chip on it at
        // round 0 with no blocked core to blame.
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 5);
        let loads = [
            ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(1, 64),
            ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(0, 64),
        ];
        let err = SystemSimulator::new(chip, Topology::ring(2)).run(&loads, 1, 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(ref r) if r.contains("cycle")), "{err}");
    }

    #[test]
    fn fan_out_cycle_through_a_longer_path_is_rejected() {
        // 0 -> {1, 2}, 2 -> 0: the cycle hides behind a fan-out edge.
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 5);
        let loads = [
            ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(1, 64).with_handoff(2, 64),
            ChipLoad::new(std::slice::from_ref(&stage)),
            ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(0, 64),
        ];
        let err =
            SystemSimulator::new(chip, Topology::fully_connected(3)).run(&loads, 1, 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(ref r) if r.contains("cycle")), "{err}");
    }

    #[test]
    fn slow_producer_gates_rounds_despite_a_fast_one() {
        // Fan-in with asymmetric stage latencies: the consumer's round
        // r must wait for BOTH producers' round-r hand-offs — a fast
        // producer running ahead must not stand in for the slow one.
        let chip = ChipSpec::chip_s();
        let fast = mvm_program(chip.cores, 10);
        let slow = mvm_program(chip.cores, 1000);
        let sink = mvm_program(chip.cores, 10);
        let bytes = 64;
        let loads = [
            ChipLoad::new(std::slice::from_ref(&fast)).with_handoff(2, bytes),
            ChipLoad::new(std::slice::from_ref(&slow)).with_handoff(2, bytes),
            ChipLoad::new(std::slice::from_ref(&sink)),
        ];
        let rounds = 3;
        let report = SystemSimulator::new(chip.clone(), Topology::fully_connected(3))
            .run(&loads, rounds, 1)
            .unwrap();
        // Partitions are chip-major: the sink's stages come last.
        let spec = pim_arch::LinkSpec::board();
        let slow_stage_ns = 1000.0 * chip.crossbar.mvm_latency_ns;
        let arrival = |round: f64| {
            (round + 1.0) * slow_stage_ns + spec.serialization_ns(bytes) + spec.latency_ns
        };
        let sink_stages = &report.partitions[2 * rounds..];
        assert_eq!(sink_stages.len(), rounds);
        for (r, stage) in sink_stages.iter().enumerate() {
            assert!(
                stage.start_ns >= arrival(r as f64) - 1e-6,
                "sink round {r} started at {} before the slow producer's hand-off at {}",
                stage.start_ns,
                arrival(r as f64)
            );
        }
    }

    #[test]
    fn fan_out_producer_feeds_two_consumers() {
        // One producer, two consumers: both consumers gate on the same
        // per-round hand-off and run concurrently once it lands.
        let chip = ChipSpec::chip_s();
        let producer = mvm_program(chip.cores, 50);
        let consumer = mvm_program(chip.cores, 50);
        let bytes = 4096;
        let loads = [
            ChipLoad::new(std::slice::from_ref(&producer))
                .with_handoff(1, bytes)
                .with_handoff(2, bytes),
            ChipLoad::new(std::slice::from_ref(&consumer)),
            ChipLoad::new(std::slice::from_ref(&consumer)),
        ];
        let rounds = 3;
        let report = SystemSimulator::new(chip, Topology::fully_connected(3))
            .run(&loads, rounds, 1)
            .unwrap();
        let chips = report.chips.as_ref().unwrap();
        assert_eq!(chips[1].rounds, rounds);
        assert_eq!(chips[2].rounds, rounds);
        assert!(chips[1].handoff_wait_ns > 0.0);
        assert!(chips[2].handoff_wait_ns > 0.0);
        let links = report.links.as_ref().unwrap();
        let carried: u64 = links.iter().map(|l| l.bytes).sum();
        assert_eq!(carried, 2 * rounds as u64 * bytes as u64, "each consumer gets its own copy");
    }

    #[test]
    fn ring_and_fc_route_contention_differs() {
        // Two producers shipping to the same destination: on a 4-ring
        // chip 0's transfer to chip 2 relays through chip 1 and shares
        // the 1→2 link with chip 1's own traffic; fully connected
        // gives each ordered pair a dedicated link.
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 10);
        let bytes = 1 << 20;
        let run = |topology: Topology| {
            let loads = [
                ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(2, bytes),
                ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(2, bytes),
                // Chip 2 consumes both inputs each round.
                ChipLoad::new(std::slice::from_ref(&stage)),
                ChipLoad::new(&[]),
            ];
            SystemSimulator::new(chip.clone(), topology).run(&loads, 2, 1).unwrap()
        };
        let ring = run(Topology::ring(4));
        let fc = run(Topology::fully_connected(4));
        let wait = |r: &SimReport| r.links.as_ref().unwrap().iter().map(|l| l.wait_ns).sum::<f64>();
        assert!(fc.makespan_ns <= ring.makespan_ns);
        assert!(
            wait(&ring) > wait(&fc),
            "shared ring links must queue more than dedicated fc links ({} vs {})",
            wait(&ring),
            wait(&fc)
        );
    }

    #[test]
    fn interleaving_hides_the_fill_of_disjoint_partitions() {
        // Two partitions on disjoint crossbar groups, four batches:
        // the barrier schedule serializes 8 stages; interleaving
        // overlaps batch b+1's partition 0 with batch b's partition 1.
        let chip = ChipSpec::chip_s();
        let programs = [mvm_on_cores(0, 4, chip.cores, 300), mvm_on_cores(4, 8, chip.cores, 300)];
        let rounds = 4;
        let run = |schedule: ScheduleMode| {
            SystemSimulator::new(chip.clone(), Topology::single())
                .with_schedule_mode(schedule)
                .run(&[ChipLoad::new(&programs)], rounds, 1)
                .unwrap()
        };
        let barrier = run(ScheduleMode::Barrier);
        let interleaved = run(ScheduleMode::Interleaved);
        assert!(
            interleaved.makespan_ns < barrier.makespan_ns,
            "interleaving ({} ns) must beat the barrier schedule ({} ns)",
            interleaved.makespan_ns,
            barrier.makespan_ns
        );
        // Same work either way.
        assert_eq!(interleaved.partitions.len(), barrier.partitions.len());
        assert_eq!(interleaved.dram_trace, barrier.dram_trace);
    }

    #[test]
    fn conflicting_claims_serialize_interleaved_stages() {
        // Both partitions use core 0: the exclusive crossbar-group
        // claim forces the barrier order and the barrier makespan.
        let chip = ChipSpec::chip_s();
        let programs = [mvm_on_cores(0, 4, chip.cores, 200), mvm_on_cores(0, 8, chip.cores, 200)];
        let rounds = 3;
        let run = |schedule: ScheduleMode| {
            SystemSimulator::new(chip.clone(), Topology::single())
                .with_schedule_mode(schedule)
                .run(&[ChipLoad::new(&programs)], rounds, 1)
                .unwrap()
        };
        let barrier = run(ScheduleMode::Barrier);
        let interleaved = run(ScheduleMode::Interleaved);
        assert!(
            (interleaved.makespan_ns - barrier.makespan_ns).abs() < 1e-9,
            "claim conflicts must serialize: {} vs {}",
            interleaved.makespan_ns,
            barrier.makespan_ns
        );
    }

    #[test]
    fn heterogeneous_slot_override_shapes_timing_and_validation() {
        // Slot 1 runs a Chip-L (36 cores): a 36-core program fits there
        // but not on the base Chip-S.
        let chip_s = ChipSpec::chip_s();
        let chip_l = ChipSpec::chip_l();
        let small = mvm_program(chip_s.cores, 100);
        let big = mvm_program(chip_l.cores, 100);
        let loads = [
            ChipLoad::new(std::slice::from_ref(&small)),
            ChipLoad::new(std::slice::from_ref(&big)),
        ];
        let homogeneous =
            SystemSimulator::new(chip_s.clone(), Topology::ring(2)).run(&loads, 1, 2).unwrap_err();
        assert!(matches!(homogeneous, SimError::CoreCountMismatch { .. }));
        let report = SystemSimulator::new(chip_s, Topology::ring(2).with_chip_override(1, chip_l))
            .run(&loads, 1, 2)
            .expect("the override slot accepts the larger program");
        assert_eq!(report.chips.as_ref().unwrap().len(), 2);
        assert!(report.makespan_ns > 0.0);
    }

    #[cfg(feature = "sharded")]
    #[test]
    fn sharded_pipeline_matches_single_threaded() {
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 200);
        let loads = [
            ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(1, 4096),
            ChipLoad::new(std::slice::from_ref(&stage)),
        ];
        let run = |sharded: bool| {
            SystemSimulator::new(chip.clone(), Topology::ring(2))
                .with_sharded(sharded)
                .run(&loads, 3, 1)
                .unwrap()
        };
        assert_eq!(run(true), run(false));
    }

    #[cfg(feature = "sharded")]
    #[test]
    fn sharded_multi_hop_contention_matches_single_threaded() {
        // The hardest equivalence case: multi-hop routes relayed
        // through an intermediate chip, shared-link queueing, an idle
        // chip, and two symmetric producers shipping at identical
        // instants (a cross-shard time tie).
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 10);
        let bytes = 1 << 20;
        let loads = [
            ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(2, bytes),
            ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(2, bytes),
            ChipLoad::new(std::slice::from_ref(&stage)),
            ChipLoad::new(&[]),
        ];
        let run = |sharded: bool| {
            SystemSimulator::new(chip.clone(), Topology::ring(4))
                .with_sharded(sharded)
                .run(&loads, 2, 1)
                .unwrap()
        };
        assert_eq!(run(true), run(false));
    }

    #[cfg(feature = "sharded")]
    #[test]
    fn sharded_runs_diagnose_deadlocks() {
        let chip = ChipSpec::chip_s();
        let good = mvm_program(chip.cores, 5);
        let mut bad = ChipProgram::new(chip.cores);
        bad.core_mut(CoreId(2)).push(I::Recv { from: CoreId(0), bytes: 64, tag: Tag(404) });
        let loads =
            [ChipLoad::new(std::slice::from_ref(&good)), ChipLoad::new(std::slice::from_ref(&bad))];
        let err = SystemSimulator::new(chip, Topology::ring(2))
            .with_sharded(true)
            .run(&loads, 1, 1)
            .unwrap_err();
        assert_eq!(err, SimError::Deadlock { core: CoreId(2), tag: Tag(404) });
    }

    /// A ring whose links all carry zero propagation latency — legal
    /// for the single-threaded engine, unusable for conservative
    /// lookahead.
    #[cfg(feature = "sharded")]
    fn zero_latency_ring() -> Topology {
        let mut topo = Topology::ring(2);
        for link in &mut topo.links {
            link.spec.latency_ns = 0.0;
        }
        topo
    }

    #[cfg(feature = "sharded")]
    #[test]
    fn sharding_fallbacks_are_recorded_not_silent() {
        use crate::report::EngineMode;
        let chip = ChipSpec::chip_s();
        let program = mvm_program(chip.cores, 5);
        // Single chip: a sharding request has nothing to parallelize.
        let single_load = [ChipLoad::new(std::slice::from_ref(&program))];
        let sim = SystemSimulator::new(chip.clone(), Topology::single()).with_sharded(true);
        assert!(sim.shard_fallback_reason(&single_load).unwrap().contains("single chip"));
        let report = sim.run(&single_load, 1, 1).unwrap();
        assert_eq!(report.engine, Some(EngineMode::SingleThread));
        // Zero-latency links admit no conservative lookahead window.
        let loads = [
            ChipLoad::new(std::slice::from_ref(&program)).with_handoff(1, 4096),
            ChipLoad::new(std::slice::from_ref(&program)),
        ];
        let sim = SystemSimulator::new(chip.clone(), zero_latency_ring()).with_sharded(true);
        assert!(sim.shard_fallback_reason(&loads).unwrap().contains("zero-latency"));
        let report = sim.run(&loads, 1, 1).unwrap();
        assert_eq!(report.engine, Some(EngineMode::SingleThread));
        // A shardable system records the sharded mode — and the
        // request is honoured, not silently dropped.
        let sim = SystemSimulator::new(chip.clone(), Topology::ring(2)).with_sharded(true);
        assert_eq!(sim.shard_fallback_reason(&loads), None);
        let report = sim.run(&loads, 1, 1).unwrap();
        assert_eq!(report.engine, Some(EngineMode::Sharded { shards: 2 }));
        // And an explicitly unsharded run says so too (explicit,
        // because the PIM_SHARDED env switch may set the default).
        let report = SystemSimulator::new(chip.clone(), Topology::ring(2))
            .with_sharded(false)
            .run(&loads, 1, 1)
            .unwrap();
        assert_eq!(report.engine, Some(EngineMode::SingleThread));
        // Serving runs honour sharding through the same gate: the old
        // unconditional dynamic-rounds fallback is gone, and the
        // remaining fallback reasons apply unchanged.
        let serving = crate::ServingConfig::new(crate::TrafficSpec::Trace(crate::RequestTrace {
            arrivals_ns: vec![0.0, 100.0, 250.0],
        }));
        let sim = SystemSimulator::new(chip.clone(), Topology::ring(2)).with_sharded(true);
        let report = sim.run_serving(&loads, &serving).unwrap();
        assert_eq!(report.engine, Some(EngineMode::Sharded { shards: 2 }));
        let sim = SystemSimulator::new(chip, zero_latency_ring()).with_sharded(true);
        let report = sim.run_serving(&loads, &serving).unwrap();
        assert_eq!(report.engine, Some(EngineMode::SingleThread));
    }

    #[cfg(feature = "sharded")]
    #[test]
    fn late_traffic_reaches_a_long_idle_shard() {
        // Lazy-release regression: chip 1 is idle from the first
        // rendezvous on (its whole load gates on upstream hand-offs
        // from slow chip 0), so for most of the run it reports no
        // frontier while speculative deliveries accumulate at the
        // boundary. It must keep receiving them — never be `Finish`ed
        // early — and complete every round.
        let chip = ChipSpec::chip_s();
        let slow = mvm_program(chip.cores, 5_000);
        let light = mvm_program(chip.cores, 1);
        let loads = [
            ChipLoad::new(std::slice::from_ref(&slow)).with_handoff(1, 65_536),
            ChipLoad::new(std::slice::from_ref(&light)),
        ];
        let run = |sharded: bool| {
            SystemSimulator::new(chip.clone(), Topology::ring(2))
                .with_sharded(sharded)
                .run(&loads, 3, 1)
                .unwrap()
        };
        let sharded = run(true);
        let consumer = &sharded.chips.as_ref().unwrap()[1];
        assert_eq!(consumer.rounds, 3, "every late hand-off was delivered");
        assert!(consumer.handoff_wait_ns > 0.0, "the consumer really did sit idle");
        assert_eq!(sharded, run(false));
    }
}
