//! The multi-chip system simulator.
//!
//! A system is several chips instantiated as component sets on **one**
//! discrete-event engine, joined by an [`InterconnectComponent`] that
//! carries inter-chip hand-offs hop-by-hop over the topology's links —
//! with per-link serialization and queueing, so concurrent transfers
//! contend instead of seeing a flat latency.
//!
//! Each chip is driven by a [`ChipSequencer`]: a component that runs
//! the chip's partition programs in order (full-chip barrier between
//! partitions, exactly like the single-chip simulator), then ships the
//! chip's boundary activations to its downstream neighbour and starts
//! the next pipeline round. A chip whose workload declares an upstream
//! input blocks each round until the matching hand-off arrives, which
//! is what makes a multi-round layer pipeline overlap: chip 0 computes
//! round `r+1` while chip 1 still digests round `r`.
//!
//! The single-chip [`crate::ChipSimulator`] is a thin wrapper over
//! this machinery with a [`Topology::single`] system; its analytic
//! reports stay byte-identical to the golden fixtures.

use crate::components::{
    BusComponent, ChipEvent, ClosedLoopDram, CoreComponent, CoreTiming, InlineDram, MemChannel,
    Rendezvous,
};
use crate::error::SimError;
use crate::report::{ChipSimSummary, CoreActivity, LinkStats, PartitionSimReport, SimReport};
use pim_arch::{ChipSpec, EnergyModel, Link, PowerBreakdown, TimingMode, Topology};
use pim_dram::{DramConfig, DramEnergy, TraceStats};
use pim_engine::{Component, ComponentId, Engine, EngineCtx, Event, SimTime};
use pim_isa::{ChipProgram, CoreId};
use std::any::Any;

/// Default closed-loop address-interleave granularity: two LPDDR3 rows
/// per stripe keeps sequential streams row-friendly while still
/// spreading blocks across channels.
pub(crate) const DEFAULT_INTERLEAVE_BYTES: usize = 4096;

/// The per-round boundary transfer a chip ships downstream after its
/// last partition drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handoff {
    /// Destination chip index.
    pub dst: usize,
    /// Bytes shipped per round (the downstream chip's entry
    /// activations for the whole round).
    pub bytes: usize,
}

/// One chip's share of a system workload.
#[derive(Debug, Clone, Copy)]
pub struct ChipLoad<'a> {
    /// The partition programs this chip executes each round, in
    /// order (empty for chips the schedule leaves idle).
    pub programs: &'a [ChipProgram],
    /// Boundary transfer shipped downstream after each round, if any.
    pub handoff: Option<Handoff>,
}

/// Event-driven simulator for a multi-chip system on the shared
/// [`pim_engine`] discrete-event core.
///
/// All chips share one [`ChipSpec`] (homogeneous system) and one
/// engine; the topology contributes the interconnect graph. See the
/// module docs for the execution model.
///
/// # Example
///
/// ```
/// use compass::{Compiler, CompileOptions, Strategy};
/// use pim_arch::{ChipSpec, Topology};
/// use pim_model::zoo;
/// use pim_sim::{ChipLoad, SystemSimulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let chip = ChipSpec::chip_s();
/// let compiled = Compiler::new(chip.clone()).compile(
///     &zoo::tiny_cnn(),
///     &CompileOptions::new().with_strategy(Strategy::Greedy).with_batch_size(2),
/// )?;
/// // Batch-shard across a 2-chip ring: both chips run the whole model
/// // on their own samples, concurrently.
/// let sim = SystemSimulator::new(chip, Topology::ring(2));
/// let loads = [
///     ChipLoad { programs: compiled.programs(), handoff: None },
///     ChipLoad { programs: compiled.programs(), handoff: None },
/// ];
/// let report = sim.run(&loads, 1, 4)?;
/// assert!(report.makespan_ns > 0.0);
/// assert_eq!(report.chips.as_ref().unwrap().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystemSimulator {
    chip: ChipSpec,
    topology: Topology,
    replay_dram: bool,
    mode: TimingMode,
    dram_channels: Option<usize>,
    interleave_bytes: usize,
    dram_reorder: bool,
}

impl SystemSimulator {
    /// Creates a system of identical `chip`s joined by `topology`, in
    /// analytic timing mode with the in-line DRAM model enabled.
    pub fn new(chip: ChipSpec, topology: Topology) -> Self {
        Self {
            chip,
            topology,
            replay_dram: true,
            mode: TimingMode::Analytic,
            dram_channels: None,
            interleave_bytes: DEFAULT_INTERLEAVE_BYTES,
            dram_reorder: false,
        }
    }

    /// The system topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Enables or disables the per-chip in-line `pim-dram` model
    /// (energy refinement only; ignored in closed-loop mode).
    pub fn with_dram_replay(mut self, enabled: bool) -> Self {
        self.replay_dram = enabled;
        self
    }

    /// Selects the memory-channel timing fidelity.
    pub fn with_timing_mode(mut self, mode: TimingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the closed-loop DRAM channel count per chip (clamped to at
    /// least one).
    pub fn with_dram_channels(mut self, channels: usize) -> Self {
        self.dram_channels = Some(channels.max(1));
        self
    }

    /// Sets the closed-loop address-interleave granularity in bytes.
    pub fn with_dram_interleave(mut self, bytes: usize) -> Self {
        self.interleave_bytes = bytes.max(1);
        self
    }

    /// Allows the closed-loop controllers to reorder same-instant
    /// in-flight accesses from independent cores FR-FCFS style
    /// (row-buffer hits first). Off by default: arrival-order service
    /// is the documented closed-loop behaviour.
    pub fn with_dram_reorder(mut self, enabled: bool) -> Self {
        self.dram_reorder = enabled;
        self
    }

    /// The closed-loop channel count in effect per chip: explicit, or
    /// derived from the chip's aggregate bandwidth over one LPDDR3
    /// channel's peak.
    pub fn dram_channel_count(&self) -> usize {
        self.dram_channels.unwrap_or_else(|| {
            DramConfig::lpddr3_1600().channels_for_bandwidth(self.chip.memory.bandwidth_gbps)
        })
    }

    fn validate(&self, loads: &[ChipLoad<'_>]) -> Result<(), SimError> {
        self.topology.validate().map_err(|e| SimError::InvalidTopology(e.to_string()))?;
        if loads.len() != self.topology.chips() {
            return Err(SimError::InvalidTopology(format!(
                "{} chip loads for a {}-chip topology",
                loads.len(),
                self.topology.chips()
            )));
        }
        for (c, load) in loads.iter().enumerate() {
            if let Some(handoff) = load.handoff {
                if handoff.dst >= loads.len() || handoff.dst == c {
                    return Err(SimError::InvalidTopology(format!(
                        "chip {c} hands off to invalid chip {}",
                        handoff.dst
                    )));
                }
                if load.programs.is_empty() {
                    return Err(SimError::InvalidTopology(format!(
                        "idle chip {c} cannot produce a hand-off"
                    )));
                }
            }
            for program in load.programs {
                if program.cores() > self.chip.cores {
                    return Err(SimError::CoreCountMismatch {
                        program_cores: program.cores(),
                        chip_cores: self.chip.cores,
                    });
                }
            }
        }
        // A cyclic hand-off chain starves at round 0: every chip on
        // the cycle waits for an input no one can produce. Each chip
        // has at most one outgoing hand-off, so walking the chain at
        // most `chips` steps finds any cycle.
        for start in 0..loads.len() {
            let mut at = start;
            for _ in 0..loads.len() {
                match loads[at].handoff {
                    Some(h) if h.dst == start => {
                        return Err(SimError::InvalidTopology(format!(
                            "hand-off cycle through chip {start}"
                        )));
                    }
                    Some(h) => at = h.dst,
                    None => break,
                }
            }
        }
        Ok(())
    }

    /// Runs `rounds` pipeline rounds of the per-chip workloads and
    /// folds the outcome into one [`SimReport`]. `samples_per_round`
    /// is the number of inference samples the whole system completes
    /// per round (it scales the report's throughput, not the
    /// simulation itself).
    ///
    /// Partition reports appear chip-major, then in (round, partition)
    /// execution order within each chip. The `chips`/`links` report
    /// sections are populated only for multi-chip topologies, keeping
    /// single-chip analytic reports byte-identical to the golden
    /// fixtures.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTopology`] for workloads that do not
    /// fit the topology, [`SimError::CoreCountMismatch`] when a
    /// program does not match the chip, and [`SimError::Deadlock`] for
    /// malformed schedules.
    pub fn run(
        &self,
        loads: &[ChipLoad<'_>],
        rounds: usize,
        samples_per_round: usize,
    ) -> Result<SimReport, SimError> {
        self.validate(loads)?;
        let rounds = rounds.max(1);
        let chips = loads.len();
        let energy_model = EnergyModel::new(&self.chip);
        let timing = CoreTiming::of(&self.chip);
        let mut engine: Engine<ChipEvent> = Engine::new(0);

        struct ChipParts {
            dram: Option<ComponentId>,
            channel: ComponentId,
            bus: ComponentId,
            rendezvous: ComponentId,
        }
        let parts: Vec<ChipParts> = (0..chips)
            .map(|_| {
                let dram = match self.mode {
                    TimingMode::Analytic => {
                        self.replay_dram.then(|| engine.add_component(InlineDram::new()))
                    }
                    TimingMode::ClosedLoop => Some(engine.add_component(ClosedLoopDram::new(
                        self.dram_channel_count(),
                        self.interleave_bytes,
                        self.dram_reorder,
                    ))),
                };
                let rendezvous = engine.add_component(Rendezvous::default());
                let channel = engine.add_component(MemChannel::new(&self.chip, dram, self.mode));
                let bus = engine.add_component(BusComponent::new(&self.chip, rendezvous));
                ChipParts { dram, channel, bus, rendezvous }
            })
            .collect();

        // The interconnect is registered before the sequencers, so the
        // sequencer addresses it must deliver to are the next `chips`
        // ids after its own.
        let interconnect_id = engine.next_component_id();
        let sequencer_ids: Vec<ComponentId> =
            (0..chips).map(|c| ComponentId(interconnect_id.0 + 1 + c)).collect();
        let interconnect =
            engine.add_component(InterconnectComponent::new(&self.topology, &sequencer_ids));
        assert_eq!(interconnect, interconnect_id);

        for (c, load) in loads.iter().enumerate() {
            // Per-source hand-off ledger: round r may start only when
            // EVERY upstream producer has shipped r+1 hand-offs, so a
            // fast producer can never stand in for a slow one.
            let upstream: Vec<(usize, usize)> = loads
                .iter()
                .enumerate()
                .filter(|(_, l)| l.handoff.map(|h| h.dst == c) == Some(true))
                .map(|(src, _)| (src, 0))
                .collect();
            let id = engine.add_component(ChipSequencer {
                chip_index: c,
                programs: load.programs.to_vec(),
                timing,
                channel: parts[c].channel,
                bus: parts[c].bus,
                rendezvous: parts[c].rendezvous,
                interconnect: interconnect_id,
                handoff: load.handoff,
                upstream,
                rounds,
                round: 0,
                partition: 0,
                running: false,
                idle_since_ns: 0.0,
                handoff_wait_ns: 0.0,
                done_count: 0,
                start_ns: 0.0,
                end_ns: 0.0,
                replace_max_ns: 0.0,
                activity: Vec::new(),
                active_cores: Vec::new(),
                records: Vec::new(),
                complete: false,
            });
            assert_eq!(id, sequencer_ids[c]);
        }
        for &id in &sequencer_ids {
            engine.schedule(SimTime::ZERO, id, ChipEvent::Kick);
        }
        engine.run_until_idle();

        // --- Fold the per-chip outcomes into one report -------------
        let sequencers: Vec<ChipSequencer> = sequencer_ids
            .iter()
            .map(|&id| engine.extract(id).expect("sequencer survives the run"))
            .collect();
        if sequencers.iter().any(|s| !s.complete) {
            return Err(deadlock_of(&mut engine, &sequencers));
        }
        let mut partitions = Vec::new();
        let mut makespan_ns = 0.0f64;
        let mut energy = PowerBreakdown::new();
        let mut summaries = Vec::with_capacity(chips);
        for (c, load) in loads.iter().enumerate() {
            let seq = &sequencers[c];
            let mut chip_end = 0.0f64;
            for record in &seq.records {
                let program = &load.programs[record.partition];
                let stats = program.stats();
                let mut part_energy = PowerBreakdown::new();
                part_energy.mvm_nj = energy_model.mvm_energy_nj(stats.mvm_activations);
                part_energy.weight_write_nj =
                    energy_model.weight_write_energy_nj(stats.weight_write_bits);
                part_energy.weight_load_nj =
                    energy_model.dram_energy_nj(stats.weight_load_bytes * 8);
                part_energy.activation_dram_nj = energy_model
                    .dram_energy_nj((stats.data_load_bytes + stats.data_store_bytes) * 8);
                part_energy.interconnect_nj = energy_model.bus_energy_nj(stats.interconnect_bytes);
                part_energy.vfu_nj = energy_model.vfu_energy_nj(stats.vfu_elements);
                energy += part_energy;
                chip_end = chip_end.max(record.end_ns);
                partitions.push(PartitionSimReport {
                    index: partitions.len(),
                    start_ns: record.start_ns,
                    end_ns: record.end_ns,
                    replace_ns: record.replace_ns,
                    stats,
                    energy: part_energy,
                    core_activity: record.activity.clone(),
                });
            }
            makespan_ns = makespan_ns.max(chip_end);
            summaries.push(ChipSimSummary {
                chip: c,
                partitions: seq.records.len(),
                // Rounds the chip actually completed: 0 for idle
                // chips, the requested count for active ones.
                rounds: seq.round,
                end_ns: chip_end,
                handoff_wait_ns: seq.handoff_wait_ns,
            });
        }
        energy.static_nj = chips as f64 * energy_model.static_energy_nj(makespan_ns);

        let mut dram_energy: Option<DramEnergy> = None;
        let mut dram_trace = TraceStats::default();
        let mut dram_channels: Option<Vec<pim_dram::ChannelStats>> = None;
        for part in &parts {
            let channel: MemChannel =
                engine.extract(part.channel).expect("channel survives the run");
            if self.replay_dram || self.mode == TimingMode::ClosedLoop {
                dram_trace.requests += channel.stats.requests;
                dram_trace.read_bytes += channel.stats.read_bytes;
                dram_trace.write_bytes += channel.stats.write_bytes;
            }
            let chip_energy = match self.mode {
                TimingMode::Analytic => part.dram.and_then(|id| {
                    let dram: InlineDram = engine.extract(id).expect("dram survives the run");
                    (dram.requests > 0).then(|| dram.sim.energy())
                }),
                TimingMode::ClosedLoop => {
                    let id = part.dram.expect("closed-loop mode wires a DRAM component");
                    let dram: ClosedLoopDram = engine.extract(id).expect("dram survives the run");
                    dram_channels.get_or_insert_with(Vec::new).extend(dram.mem.channel_stats());
                    (dram.requests > 0).then(|| dram.mem.energy())
                }
            };
            if let Some(e) = chip_energy {
                dram_energy = Some(match dram_energy {
                    None => e,
                    Some(acc) => DramEnergy {
                        activate_nj: acc.activate_nj + e.activate_nj,
                        read_nj: acc.read_nj + e.read_nj,
                        write_nj: acc.write_nj + e.write_nj,
                        refresh_nj: acc.refresh_nj + e.refresh_nj,
                        background_nj: acc.background_nj + e.background_nj,
                    },
                });
            }
        }

        let multi = !self.topology.is_single();
        let links = multi.then(|| {
            let ic: InterconnectComponent =
                engine.extract(interconnect_id).expect("interconnect survives the run");
            ic.stats
        });
        Ok(SimReport {
            batch: (samples_per_round * rounds).max(1),
            partitions,
            makespan_ns,
            energy,
            dram_energy,
            dram_trace,
            dram_channels,
            chips: multi.then_some(summaries),
            links,
        })
    }
}

/// Diagnoses a stalled system: the first chip (by index) with an
/// unfinished core names the deadlock — its lowest-index blocked core
/// waits on a recv whose send never executed. Chips that merely
/// starved (their upstream producer is the deadlocked one, possibly
/// at a lower index) have no active cores and are skipped.
fn deadlock_of(engine: &mut Engine<ChipEvent>, sequencers: &[ChipSequencer]) -> SimError {
    for seq in sequencers.iter().filter(|s| !s.complete) {
        for (i, &id) in seq.active_cores.iter().enumerate() {
            let core: CoreComponent = engine.extract(id).expect("core component survives the run");
            if !core.finished {
                let tag = core.blocked.expect("unfinished cores block on recv");
                return SimError::Deadlock { core: CoreId(i), tag };
            }
        }
    }
    // Hand-off cycles are rejected up front, so an incomplete system
    // always contains at least one blocked core.
    unreachable!("incomplete system has no blocked core")
}

/// Drives one chip's rounds: partitions in order with full-chip
/// barriers, hand-off shipping between rounds, and input gating for
/// pipeline stages. See the module docs.
pub(crate) struct ChipSequencer {
    chip_index: usize,
    programs: Vec<ChipProgram>,
    timing: CoreTiming,
    channel: ComponentId,
    bus: ComponentId,
    rendezvous: ComponentId,
    interconnect: ComponentId,
    handoff: Option<Handoff>,
    /// Per-upstream-producer hand-off ledger: `(source chip,
    /// hand-offs received from it)`.
    upstream: Vec<(usize, usize)>,
    rounds: usize,
    // Live state.
    round: usize,
    partition: usize,
    running: bool,
    idle_since_ns: f64,
    pub(crate) handoff_wait_ns: f64,
    done_count: usize,
    start_ns: f64,
    end_ns: f64,
    replace_max_ns: f64,
    activity: Vec<CoreActivity>,
    pub(crate) active_cores: Vec<ComponentId>,
    pub(crate) records: Vec<StageRecord>,
    pub(crate) complete: bool,
}

/// One executed (round, partition) stage of a chip.
pub(crate) struct StageRecord {
    pub(crate) partition: usize,
    pub(crate) start_ns: f64,
    pub(crate) end_ns: f64,
    pub(crate) replace_ns: f64,
    pub(crate) activity: Vec<CoreActivity>,
}

impl ChipSequencer {
    /// Starts the next round's first partition if this chip is idle
    /// and the round's upstream inputs have all arrived.
    fn try_start_round(&mut self, me: ComponentId, ctx: &mut EngineCtx<'_, ChipEvent>) {
        if self.running || self.complete {
            return;
        }
        if self.programs.is_empty() || self.round >= self.rounds {
            self.complete = true;
            return;
        }
        if self.upstream.iter().any(|&(_, received)| received <= self.round) {
            return; // still waiting on an upstream hand-off
        }
        self.handoff_wait_ns += (ctx.now().as_ns() - self.idle_since_ns).max(0.0);
        self.start_partition(me, ctx);
    }

    /// Spawns the current partition's cores behind a full-chip
    /// barrier, exactly as the single-chip simulator's partition loop
    /// did: barriers first, then cores in index order, all at the
    /// current instant.
    fn start_partition(&mut self, me: ComponentId, ctx: &mut EngineCtx<'_, ChipEvent>) {
        let now = ctx.now();
        for shared in [self.channel, self.bus, self.rendezvous] {
            ctx.schedule(now, shared, ChipEvent::Barrier);
        }
        let program = &self.programs[self.partition];
        self.activity = vec![CoreActivity::default(); program.cores()];
        self.active_cores = (0..program.cores())
            .map(|c| {
                let stream = program.core(CoreId(c)).instructions().to_vec();
                let id = ctx.add_component(CoreComponent::new(
                    stream,
                    now,
                    self.timing,
                    self.channel,
                    self.bus,
                    self.rendezvous,
                    me,
                    c,
                ));
                ctx.schedule(now, id, ChipEvent::Step);
                id
            })
            .collect();
        self.running = true;
        self.done_count = 0;
        self.start_ns = now.as_ns();
        self.end_ns = self.start_ns;
        self.replace_max_ns = self.start_ns;
        // A zero-core program has nothing to wait for: complete the
        // stage at its start instant (the CoreDone arm would otherwise
        // never fire and the sequencer would hang).
        if self.active_cores.is_empty() {
            self.finish_partition(me, ctx);
        }
    }

    /// Folds a drained partition into the records and advances the
    /// round/partition state machine.
    fn finish_partition(&mut self, me: ComponentId, ctx: &mut EngineCtx<'_, ChipEvent>) {
        self.records.push(StageRecord {
            partition: self.partition,
            start_ns: self.start_ns,
            end_ns: self.end_ns,
            replace_ns: self.replace_max_ns - self.start_ns,
            activity: std::mem::take(&mut self.activity),
        });
        self.running = false;
        self.active_cores.clear();
        self.partition += 1;
        if self.partition < self.programs.len() {
            self.start_partition(me, ctx);
            return;
        }
        // Round complete: ship the boundary activations downstream,
        // then try to pipeline into the next round.
        let now = ctx.now();
        if let Some(handoff) = self.handoff {
            ctx.schedule(
                now,
                self.interconnect,
                ChipEvent::Ship {
                    src: self.chip_index,
                    dst: handoff.dst,
                    bytes: handoff.bytes,
                    hop: 0,
                },
            );
        }
        self.round += 1;
        self.partition = 0;
        if self.round < self.rounds {
            self.idle_since_ns = now.as_ns();
            self.try_start_round(me, ctx);
        } else {
            self.complete = true;
        }
    }
}

impl Component<ChipEvent> for ChipSequencer {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        match event.payload {
            ChipEvent::Kick => {
                self.idle_since_ns = event.time.as_ns();
                self.try_start_round(event.target, ctx);
            }
            ChipEvent::HandoffIn { src } => {
                let entry = self
                    .upstream
                    .iter_mut()
                    .find(|(s, _)| *s == src)
                    .expect("hand-off arrives only from declared producers");
                entry.1 += 1;
                self.try_start_round(event.target, ctx);
            }
            ChipEvent::CoreDone { core_index, activity, replace_done_ns } => {
                self.activity[core_index] = activity;
                self.end_ns = self.end_ns.max(event.time.as_ns());
                self.replace_max_ns = self.replace_max_ns.max(replace_done_ns);
                self.done_count += 1;
                if self.done_count == self.active_cores.len() {
                    self.finish_partition(event.target, ctx);
                }
            }
            other => unreachable!("sequencer received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The inter-chip interconnect: carries each hand-off hop-by-hop over
/// the topology's precomputed shortest routes. Every directed link has
/// its own availability timestamp, so transfers sharing a link
/// serialize — contention is modelled, not approximated by a flat
/// latency.
pub(crate) struct InterconnectComponent {
    links: Vec<Link>,
    free_ns: Vec<f64>,
    /// `routes[src][dst]` is the link-index path, `None` when
    /// unreachable (validation rejects such topologies up front).
    routes: Vec<Vec<Option<Vec<usize>>>>,
    sequencers: Vec<ComponentId>,
    pub(crate) stats: Vec<LinkStats>,
}

impl InterconnectComponent {
    pub(crate) fn new(topology: &Topology, sequencers: &[ComponentId]) -> Self {
        let chips = topology.chips();
        let links = topology.links().to_vec();
        let routes = (0..chips)
            .map(|src| (0..chips).map(|dst| topology.route(src, dst)).collect())
            .collect();
        let stats = links
            .iter()
            .map(|l| LinkStats { src: l.src, dst: l.dst, ..LinkStats::default() })
            .collect();
        Self {
            free_ns: vec![0.0; links.len()],
            links,
            routes,
            sequencers: sequencers.to_vec(),
            stats,
        }
    }
}

impl Component<ChipEvent> for InterconnectComponent {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        match event.payload {
            ChipEvent::Ship { src, dst, bytes, hop } => {
                let route = self.routes[src][dst].as_ref().expect("validated route exists");
                if hop >= route.len() {
                    ctx.schedule(event.time, self.sequencers[dst], ChipEvent::HandoffIn { src });
                    return;
                }
                let link = route[hop];
                let spec = self.links[link].spec;
                let now = event.time.as_ns();
                let start = now.max(self.free_ns[link]);
                let serialization = spec.serialization_ns(bytes);
                self.free_ns[link] = start + serialization;
                let stats = &mut self.stats[link];
                stats.transfers += 1;
                stats.bytes += bytes as u64;
                stats.busy_ns += serialization;
                stats.wait_ns += start - now;
                ctx.schedule(
                    SimTime::from_ns(start + serialization + spec.latency_ns),
                    event.target,
                    ChipEvent::Ship { src, dst, bytes, hop: hop + 1 },
                );
            }
            other => unreachable!("interconnect received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::{Instruction as I, Tag};

    fn mvm_program(cores: usize, waves: usize) -> ChipProgram {
        let mut program = ChipProgram::new(cores);
        for c in 0..4 {
            program.core_mut(CoreId(c)).push(I::Mvmul { waves, activations: 64, node: 0 });
        }
        program
    }

    #[test]
    fn single_chip_system_equals_chip_simulator() {
        let chip = ChipSpec::chip_s();
        let program = mvm_program(chip.cores, 100);
        let system = SystemSimulator::new(chip.clone(), Topology::single())
            .run(&[ChipLoad { programs: std::slice::from_ref(&program), handoff: None }], 1, 1)
            .unwrap();
        let single =
            crate::ChipSimulator::new(chip).run(std::slice::from_ref(&program), 1).unwrap();
        assert_eq!(system, single);
        assert!(system.chips.is_none());
        assert!(system.links.is_none());
    }

    #[test]
    fn batch_shard_chips_run_concurrently() {
        let chip = ChipSpec::chip_s();
        let program = mvm_program(chip.cores, 200);
        let one = SystemSimulator::new(chip.clone(), Topology::single())
            .run(&[ChipLoad { programs: std::slice::from_ref(&program), handoff: None }], 1, 1)
            .unwrap();
        let loads = [
            ChipLoad { programs: std::slice::from_ref(&program), handoff: None },
            ChipLoad { programs: std::slice::from_ref(&program), handoff: None },
        ];
        let two = SystemSimulator::new(chip, Topology::ring(2)).run(&loads, 1, 2).unwrap();
        // Two identical shards overlap perfectly: same makespan, twice
        // the work recorded.
        assert!((two.makespan_ns - one.makespan_ns).abs() < 1e-9);
        assert_eq!(two.partitions.len(), 2 * one.partitions.len());
        assert_eq!(two.chips.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn pipeline_rounds_overlap_across_chips() {
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 500);
        let rounds = 4;
        // One chip runs both stages serially, every round.
        let both = [stage.clone(), stage.clone()];
        let serial = SystemSimulator::new(chip.clone(), Topology::single())
            .run(&[ChipLoad { programs: &both, handoff: None }], rounds, 1)
            .unwrap();
        // Two chips pipeline one stage each with a per-round hand-off.
        let loads = [
            ChipLoad {
                programs: std::slice::from_ref(&stage),
                handoff: Some(Handoff { dst: 1, bytes: 4096 }),
            },
            ChipLoad { programs: std::slice::from_ref(&stage), handoff: None },
        ];
        let pipelined =
            SystemSimulator::new(chip, Topology::ring(2)).run(&loads, rounds, 1).unwrap();
        assert!(
            pipelined.makespan_ns < serial.makespan_ns,
            "2-chip pipeline ({} ns) must beat 1 chip ({} ns)",
            pipelined.makespan_ns,
            serial.makespan_ns
        );
        // The downstream chip stalls for the pipeline fill plus link
        // time, and the link carried one transfer per round.
        let chips = pipelined.chips.as_ref().unwrap();
        assert!(chips[1].handoff_wait_ns > 0.0);
        let links = pipelined.links.as_ref().unwrap();
        let carried: u64 = links.iter().map(|l| l.bytes).sum();
        assert_eq!(carried, rounds as u64 * 4096);
    }

    #[test]
    fn handoff_gates_downstream_chip() {
        // The downstream chip must not start before the hand-off
        // lands: serialization + latency of the 2-chip ring link.
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 10);
        let bytes = 8192;
        let loads = [
            ChipLoad {
                programs: std::slice::from_ref(&stage),
                handoff: Some(Handoff { dst: 1, bytes }),
            },
            ChipLoad { programs: std::slice::from_ref(&stage), handoff: None },
        ];
        let report =
            SystemSimulator::new(chip.clone(), Topology::ring(2)).run(&loads, 1, 1).unwrap();
        let spec = pim_arch::LinkSpec::board();
        let stage_ns = 10.0 * chip.crossbar.mvm_latency_ns;
        let expected_start = stage_ns + spec.serialization_ns(bytes) + spec.latency_ns;
        let downstream = &report.partitions[1];
        assert!(
            (downstream.start_ns - expected_start).abs() < 1e-6,
            "downstream started at {} vs expected {expected_start}",
            downstream.start_ns
        );
    }

    #[test]
    fn rejects_mismatched_loads() {
        let chip = ChipSpec::chip_s();
        let program = mvm_program(chip.cores, 1);
        let err = SystemSimulator::new(chip.clone(), Topology::ring(2))
            .run(&[ChipLoad { programs: std::slice::from_ref(&program), handoff: None }], 1, 1)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
        // A hand-off from an idle chip is meaningless.
        let idle = [
            ChipLoad { programs: &[], handoff: Some(Handoff { dst: 1, bytes: 64 }) },
            ChipLoad { programs: std::slice::from_ref(&program), handoff: None },
        ];
        let err = SystemSimulator::new(chip, Topology::ring(2)).run(&idle, 1, 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn deadlock_is_reported_from_any_chip() {
        let chip = ChipSpec::chip_s();
        let good = mvm_program(chip.cores, 5);
        let mut bad = ChipProgram::new(chip.cores);
        bad.core_mut(CoreId(2)).push(I::Recv { from: CoreId(0), bytes: 64, tag: Tag(404) });
        let loads = [
            ChipLoad { programs: std::slice::from_ref(&good), handoff: None },
            ChipLoad { programs: std::slice::from_ref(&bad), handoff: None },
        ];
        let err = SystemSimulator::new(chip, Topology::ring(2)).run(&loads, 1, 1).unwrap_err();
        assert_eq!(err, SimError::Deadlock { core: CoreId(2), tag: Tag(404) });
    }

    #[test]
    fn deadlocked_producer_behind_a_starved_lower_chip_is_still_diagnosed() {
        // Chip 1 hands off to chip 0 but deadlocks, so chip 0 starves
        // without ever spawning a core. The error must name chip 1's
        // blocked core, not panic on the starved (lower-index) chip.
        let chip = ChipSpec::chip_s();
        let good = mvm_program(chip.cores, 5);
        let mut bad = ChipProgram::new(chip.cores);
        bad.core_mut(CoreId(1)).push(I::Recv { from: CoreId(0), bytes: 64, tag: Tag(500) });
        let loads = [
            ChipLoad { programs: std::slice::from_ref(&good), handoff: None },
            ChipLoad {
                programs: std::slice::from_ref(&bad),
                handoff: Some(Handoff { dst: 0, bytes: 64 }),
            },
        ];
        let err = SystemSimulator::new(chip, Topology::ring(2)).run(&loads, 2, 1).unwrap_err();
        assert_eq!(err, SimError::Deadlock { core: CoreId(1), tag: Tag(500) });
    }

    #[test]
    fn zero_core_programs_complete_instantly() {
        // The pre-system ChipSimulator returned Ok for a zero-core
        // program; the sequencer must too (its stage has nothing to
        // wait for).
        let chip = ChipSpec::chip_s();
        let empty = ChipProgram::new(0);
        let report = crate::ChipSimulator::new(chip.clone())
            .run(std::slice::from_ref(&empty), 1)
            .expect("zero-core programs must not hang");
        assert_eq!(report.partitions.len(), 1);
        assert_eq!(report.makespan_ns, 0.0);
        assert!(report.partitions[0].core_activity.is_empty());
        // And mixed with real work across rounds.
        let work = mvm_program(chip.cores, 5);
        let report = SystemSimulator::new(chip, Topology::single())
            .run(&[ChipLoad { programs: &[empty, work], handoff: None }], 2, 1)
            .unwrap();
        assert_eq!(report.partitions.len(), 4);
        assert!(report.makespan_ns > 0.0);
    }

    #[test]
    fn idle_chips_report_zero_completed_rounds() {
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 5);
        let loads = [
            ChipLoad { programs: std::slice::from_ref(&stage), handoff: None },
            ChipLoad { programs: &[], handoff: None },
        ];
        let report = SystemSimulator::new(chip, Topology::ring(2)).run(&loads, 3, 1).unwrap();
        let chips = report.chips.as_ref().unwrap();
        assert_eq!(chips[0].rounds, 3, "active chip completed every round");
        assert_eq!(chips[1].rounds, 0, "idle chip completed none");
        assert_eq!(chips[1].partitions, 0);
    }

    #[test]
    fn handoff_cycles_are_rejected_up_front() {
        // A cyclic hand-off chain would starve every chip on it at
        // round 0 with no blocked core to blame.
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 5);
        let loads = [
            ChipLoad {
                programs: std::slice::from_ref(&stage),
                handoff: Some(Handoff { dst: 1, bytes: 64 }),
            },
            ChipLoad {
                programs: std::slice::from_ref(&stage),
                handoff: Some(Handoff { dst: 0, bytes: 64 }),
            },
        ];
        let err = SystemSimulator::new(chip, Topology::ring(2)).run(&loads, 1, 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(ref r) if r.contains("cycle")), "{err}");
    }

    #[test]
    fn slow_producer_gates_rounds_despite_a_fast_one() {
        // Fan-in with asymmetric stage latencies: the consumer's round
        // r must wait for BOTH producers' round-r hand-offs — a fast
        // producer running ahead must not stand in for the slow one.
        let chip = ChipSpec::chip_s();
        let fast = mvm_program(chip.cores, 10);
        let slow = mvm_program(chip.cores, 1000);
        let sink = mvm_program(chip.cores, 10);
        let bytes = 64;
        let loads = [
            ChipLoad {
                programs: std::slice::from_ref(&fast),
                handoff: Some(Handoff { dst: 2, bytes }),
            },
            ChipLoad {
                programs: std::slice::from_ref(&slow),
                handoff: Some(Handoff { dst: 2, bytes }),
            },
            ChipLoad { programs: std::slice::from_ref(&sink), handoff: None },
        ];
        let rounds = 3;
        let report = SystemSimulator::new(chip.clone(), Topology::fully_connected(3))
            .run(&loads, rounds, 1)
            .unwrap();
        // Partitions are chip-major: the sink's stages come last.
        let spec = pim_arch::LinkSpec::board();
        let slow_stage_ns = 1000.0 * chip.crossbar.mvm_latency_ns;
        let arrival = |round: f64| {
            (round + 1.0) * slow_stage_ns + spec.serialization_ns(bytes) + spec.latency_ns
        };
        let sink_stages = &report.partitions[2 * rounds..];
        assert_eq!(sink_stages.len(), rounds);
        for (r, stage) in sink_stages.iter().enumerate() {
            assert!(
                stage.start_ns >= arrival(r as f64) - 1e-6,
                "sink round {r} started at {} before the slow producer's hand-off at {}",
                stage.start_ns,
                arrival(r as f64)
            );
        }
    }

    #[test]
    fn ring_and_fc_route_contention_differs() {
        // Two producers shipping to the same destination: on a 4-ring
        // chip 0's transfer to chip 2 relays through chip 1 and shares
        // the 1→2 link with chip 1's own traffic; fully connected
        // gives each ordered pair a dedicated link.
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, 10);
        let bytes = 1 << 20;
        let run = |topology: Topology| {
            let loads = [
                ChipLoad {
                    programs: std::slice::from_ref(&stage),
                    handoff: Some(Handoff { dst: 2, bytes }),
                },
                ChipLoad {
                    programs: std::slice::from_ref(&stage),
                    handoff: Some(Handoff { dst: 2, bytes }),
                },
                // Chip 2 consumes both inputs each round.
                ChipLoad { programs: std::slice::from_ref(&stage), handoff: None },
                ChipLoad { programs: &[], handoff: None },
            ];
            SystemSimulator::new(chip.clone(), topology).run(&loads, 2, 1).unwrap()
        };
        let ring = run(Topology::ring(4));
        let fc = run(Topology::fully_connected(4));
        let wait = |r: &SimReport| r.links.as_ref().unwrap().iter().map(|l| l.wait_ns).sum::<f64>();
        assert!(fc.makespan_ns <= ring.makespan_ns);
        assert!(
            wait(&ring) > wait(&fc),
            "shared ring links must queue more than dedicated fc links ({} vs {})",
            wait(&ring),
            wait(&fc)
        );
    }
}
