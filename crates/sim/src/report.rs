//! Simulation reports.

use pim_arch::PowerBreakdown;
use pim_dram::{ChannelStats, DramEnergy, TraceStats};
use pim_isa::InstructionStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-core time accounting within one partition, by activity class.
///
/// `busy` categories are mutually exclusive occupancy of the core;
/// `recv_wait_ns` and `dram_wait_ns` are stalls (waiting on a peer's
/// send or on the shared memory channel).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CoreActivity {
    /// Crossbar MVM time.
    pub mvm_ns: f64,
    /// VFU vector-op time.
    pub vfu_ns: f64,
    /// Crossbar write (weight replacement) time.
    pub write_ns: f64,
    /// Global-memory transfer occupancy (loads + stores).
    pub dram_ns: f64,
    /// Bus send occupancy (arbitration share).
    pub send_ns: f64,
    /// Stall waiting for a matching send.
    pub recv_wait_ns: f64,
    /// Stall waiting for the memory channel.
    pub dram_wait_ns: f64,
}

impl CoreActivity {
    /// Total busy time (excludes stalls).
    pub fn busy_ns(&self) -> f64 {
        self.mvm_ns + self.vfu_ns + self.write_ns + self.dram_ns + self.send_ns
    }

    /// Busy fraction of a partition span.
    pub fn utilization(&self, span_ns: f64) -> f64 {
        if span_ns <= 0.0 {
            return 0.0;
        }
        (self.busy_ns() / span_ns).min(1.0)
    }
}

/// Timing and energy of one partition's execution (one bar of the
/// paper's Fig. 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSimReport {
    /// Partition index in execution order.
    pub index: usize,
    /// Absolute start time, ns.
    pub start_ns: f64,
    /// Absolute end time (all cores drained), ns.
    pub end_ns: f64,
    /// Time until the last core finished its weight-replace phase
    /// (relative to `start_ns`).
    pub replace_ns: f64,
    /// Static instruction statistics of the partition's program.
    pub stats: InstructionStats,
    /// Dynamic energy of this partition.
    pub energy: PowerBreakdown,
    /// Per-core activity breakdown.
    pub core_activity: Vec<CoreActivity>,
}

impl PartitionSimReport {
    /// Total partition latency, ns.
    pub fn latency_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }

    /// Compute (pipeline) portion of the latency, ns.
    pub fn compute_ns(&self) -> f64 {
        self.latency_ns() - self.replace_ns
    }

    /// Mean busy fraction across cores that did any work.
    pub fn mean_utilization(&self) -> f64 {
        let span = self.latency_ns();
        let active: Vec<f64> = self
            .core_activity
            .iter()
            .filter(|a| a.busy_ns() > 0.0)
            .map(|a| a.utilization(span))
            .collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        }
    }
}

/// Aggregate counters of one directed inter-chip link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LinkStats {
    /// Source chip index.
    pub src: usize,
    /// Destination chip index.
    pub dst: usize,
    /// Transfers carried.
    pub transfers: u64,
    /// Bytes carried.
    pub bytes: u64,
    /// Serialization occupancy, ns.
    pub busy_ns: f64,
    /// Time transfers queued behind the busy link, ns.
    pub wait_ns: f64,
}

/// Per-chip execution summary of a multi-chip system run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipSimSummary {
    /// Chip index within the topology.
    pub chip: usize,
    /// Partition stages executed across all rounds.
    pub partitions: usize,
    /// Pipeline rounds completed.
    pub rounds: usize,
    /// Completion time of the chip's last stage, ns.
    pub end_ns: f64,
    /// Time the chip sat idle waiting for upstream hand-offs, ns.
    pub handoff_wait_ns: f64,
}

/// How a run was executed — provenance metadata so benchmarks and
/// logs cannot misattribute single-threaded numbers to the sharded
/// path (e.g. after a silent sharding fallback on a single-chip or
/// zero-latency-link system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Every chip on one event loop.
    SingleThread,
    /// One engine thread per chip behind the conservative-lookahead
    /// boundary.
    Sharded {
        /// Number of shard threads (one per chip).
        shards: usize,
    },
}

impl fmt::Display for EngineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineMode::SingleThread => write!(f, "single-thread"),
            EngineMode::Sharded { shards } => write!(f, "sharded:{shards}"),
        }
    }
}

/// The full simulation result for one batch cycle.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Batch size simulated.
    pub batch: usize,
    /// Per-partition reports in execution order.
    pub partitions: Vec<PartitionSimReport>,
    /// End-to-end makespan of the batch cycle, ns.
    pub makespan_ns: f64,
    /// Total energy (dynamic + chip static over the makespan).
    pub energy: PowerBreakdown,
    /// Refined DRAM energy from replaying the generated memory trace
    /// (present when DRAM replay is enabled).
    pub dram_energy: Option<DramEnergy>,
    /// DRAM trace byte totals.
    pub dram_trace: TraceStats,
    /// Per-channel DRAM counters (utilization, row hits, ...),
    /// present only in closed-loop timing mode.
    pub dram_channels: Option<Vec<ChannelStats>>,
    /// Per-chip stage summaries, present only for multi-chip
    /// topologies.
    pub chips: Option<Vec<ChipSimSummary>>,
    /// Per-link interconnect counters, present only for multi-chip
    /// topologies.
    pub links: Option<Vec<LinkStats>>,
    /// Per-request serving section, present only for open-loop
    /// serving runs ([`crate::SystemSimulator::run_serving`]).
    pub serving: Option<crate::ServingReport>,
    /// Effective execution mode (run metadata). Excluded from both
    /// serialization and equality: sharded and single-threaded runs
    /// of the same system must stay byte-identical and compare equal,
    /// while logs and benchmarks can still see which engine produced
    /// the numbers. `None` for reports assembled outside a run (e.g.
    /// deserialized fixtures).
    pub engine: Option<EngineMode>,
}

// `engine` is provenance, not a result: two runs of the same system
// on different engines are *required* to agree on everything else, so
// equality ignores it (see the byte-identity suites).
impl PartialEq for SimReport {
    fn eq(&self, other: &Self) -> bool {
        self.batch == other.batch
            && self.partitions == other.partitions
            && self.makespan_ns == other.makespan_ns
            && self.energy == other.energy
            && self.dram_energy == other.dram_energy
            && self.dram_trace == other.dram_trace
            && self.dram_channels == other.dram_channels
            && self.chips == other.chips
            && self.links == other.links
            && self.serving == other.serving
    }
}

// Hand-written (de)serialization: the trailing `dram_channels`,
// `chips`, and `links` fields are emitted only when present, so
// `Analytic`-mode single-chip reports stay byte-identical to the
// pre-timing-mode fixtures in `tests/golden/`. With real serde this is
// `#[serde(skip_serializing_if = "Option::is_none", default)]`; the
// offline derive polyfill has no attribute support, hence the explicit
// impls.
impl Serialize for SimReport {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"batch\":");
        self.batch.serialize_json(out);
        out.push_str(",\"partitions\":");
        self.partitions.serialize_json(out);
        out.push_str(",\"makespan_ns\":");
        self.makespan_ns.serialize_json(out);
        out.push_str(",\"energy\":");
        self.energy.serialize_json(out);
        out.push_str(",\"dram_energy\":");
        self.dram_energy.serialize_json(out);
        out.push_str(",\"dram_trace\":");
        self.dram_trace.serialize_json(out);
        if let Some(channels) = &self.dram_channels {
            out.push_str(",\"dram_channels\":");
            channels.serialize_json(out);
        }
        if let Some(chips) = &self.chips {
            out.push_str(",\"chips\":");
            chips.serialize_json(out);
        }
        if let Some(links) = &self.links {
            out.push_str(",\"links\":");
            links.serialize_json(out);
        }
        if let Some(serving) = &self.serving {
            out.push_str(",\"serving\":");
            serving.serialize_json(out);
        }
        out.push('}');
    }
}

impl Deserialize for SimReport {
    fn deserialize_json(value: &serde::json::Value) -> Result<Self, serde::json::JsonError> {
        fn optional<T: Deserialize>(
            value: &serde::json::Value,
            name: &str,
        ) -> Result<Option<T>, serde::json::JsonError> {
            match serde::json::field(value, name) {
                Ok(v) => Deserialize::deserialize_json(v).map(Some),
                Err(_) => Ok(None),
            }
        }
        Ok(Self {
            batch: Deserialize::deserialize_json(serde::json::field(value, "batch")?)?,
            partitions: Deserialize::deserialize_json(serde::json::field(value, "partitions")?)?,
            makespan_ns: Deserialize::deserialize_json(serde::json::field(value, "makespan_ns")?)?,
            energy: Deserialize::deserialize_json(serde::json::field(value, "energy")?)?,
            dram_energy: Deserialize::deserialize_json(serde::json::field(value, "dram_energy")?)?,
            dram_trace: Deserialize::deserialize_json(serde::json::field(value, "dram_trace")?)?,
            dram_channels: optional(value, "dram_channels")?,
            chips: optional(value, "chips")?,
            links: optional(value, "links")?,
            serving: optional(value, "serving")?,
            engine: None,
        })
    }
}

impl SimReport {
    /// Inferences per second.
    pub fn throughput_ips(&self) -> f64 {
        if self.makespan_ns == 0.0 {
            return 0.0;
        }
        self.batch as f64 / (self.makespan_ns * 1e-9)
    }

    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.makespan_ns * 1e-6
    }

    /// Energy per inference in microjoules.
    pub fn energy_per_inference_uj(&self) -> f64 {
        self.energy.total_uj() / self.batch.max(1) as f64
    }

    /// EDP per sample (µJ · ms), as plotted in the paper's Fig. 8.
    pub fn edp_per_inference(&self) -> f64 {
        self.energy_per_inference_uj() * self.latency_ms()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simulated {} partitions, batch {}: {:.3} ms, {:.1} inf/s, {:.1} uJ/inf",
            self.partitions.len(),
            self.batch,
            self.latency_ms(),
            self.throughput_ips(),
            self.energy_per_inference_uj()
        )?;
        for p in &self.partitions {
            writeln!(
                f,
                "  P{}: {:.1} us (replace {:.1} us, compute {:.1} us)",
                p.index,
                p.latency_ns() / 1000.0,
                p.replace_ns / 1000.0,
                p.compute_ns() / 1000.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            batch: 4,
            partitions: vec![PartitionSimReport {
                index: 0,
                start_ns: 0.0,
                end_ns: 2_000_000.0,
                replace_ns: 500_000.0,
                stats: InstructionStats::default(),
                energy: PowerBreakdown::new(),
                core_activity: Vec::new(),
            }],
            makespan_ns: 2_000_000.0,
            energy: PowerBreakdown { mvm_nj: 4000.0, ..PowerBreakdown::new() },
            dram_energy: None,
            dram_trace: TraceStats::default(),
            dram_channels: None,
            chips: None,
            links: None,
            serving: None,
            engine: None,
        }
    }

    #[test]
    fn throughput_and_latency() {
        let r = report();
        // 4 samples / 2 ms = 2000 inf/s.
        assert!((r.throughput_ips() - 2000.0).abs() < 1e-9);
        assert!((r.latency_ms() - 2.0).abs() < 1e-12);
        assert!((r.energy_per_inference_uj() - 1.0).abs() < 1e-12);
        assert!((r.edp_per_inference() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partition_breakdown() {
        let p = &report().partitions[0];
        assert!((p.latency_ns() - 2_000_000.0).abs() < 1e-9);
        assert!((p.compute_ns() - 1_500_000.0).abs() < 1e-9);
    }

    #[test]
    fn display_lists_partitions() {
        assert!(report().to_string().contains("P0:"));
    }

    #[test]
    fn dram_channels_serialize_only_when_present() {
        let mut r = report();
        let analytic = serde_json::to_string(&r).unwrap();
        assert!(
            !analytic.contains("dram_channels"),
            "analytic reports must keep the pre-closed-loop byte layout"
        );
        r.dram_channels = Some(vec![ChannelStats::default()]);
        let closed = serde_json::to_string(&r).unwrap();
        assert!(closed.contains("\"dram_channels\":["));
        // Both layouts round-trip.
        for json in [analytic, closed] {
            let back: SimReport = serde_json::from_str(&json).unwrap();
            let mut again = String::new();
            back.serialize_json(&mut again);
            assert_eq!(json, again);
        }
    }

    #[test]
    fn system_sections_serialize_only_when_present() {
        let mut r = report();
        let single = serde_json::to_string(&r).unwrap();
        assert!(!single.contains("\"chips\""), "single-chip layout must stay fixture-stable");
        assert!(!single.contains("\"links\""));
        r.chips = Some(vec![ChipSimSummary {
            chip: 0,
            partitions: 3,
            rounds: 2,
            end_ns: 2_000_000.0,
            handoff_wait_ns: 125.0,
        }]);
        r.links = Some(vec![LinkStats {
            src: 0,
            dst: 1,
            transfers: 2,
            bytes: 4096,
            busy_ns: 512.0,
            wait_ns: 0.0,
        }]);
        let multi = serde_json::to_string(&r).unwrap();
        assert!(multi.contains("\"chips\":["));
        assert!(multi.contains("\"links\":["));
        let back: SimReport = serde_json::from_str(&multi).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn serving_section_serializes_only_when_present() {
        let mut r = report();
        let batch = serde_json::to_string(&r).unwrap();
        assert!(!batch.contains("\"serving\""), "batch-mode layout must stay fixture-stable");
        r.serving = Some(crate::ServingReport {
            requests: 2,
            dropped: 1,
            rounds: 2,
            p50_ns: 1_000.0,
            p99_ns: 2_000.0,
            p999_ns: 2_000.0,
            mean_queue_ns: 250.0,
            goodput_rps: 1e6,
            slo_violations: 0,
            records: vec![crate::RequestRecord {
                arrival_ns: 0.0,
                round: 0,
                start_ns: 100.0,
                finish_ns: 1_000.0,
            }],
        });
        let serving = serde_json::to_string(&r).unwrap();
        assert!(serving.contains("\"serving\":{"));
        let back: SimReport = serde_json::from_str(&serving).unwrap();
        assert_eq!(back, r);
        let mut again = String::new();
        back.serialize_json(&mut again);
        assert_eq!(serving, again, "serving reports round-trip byte-identically");
    }

    #[test]
    fn engine_mode_is_metadata_only() {
        let mut r = report();
        let plain = serde_json::to_string(&r).unwrap();
        r.engine = Some(EngineMode::Sharded { shards: 4 });
        let stamped = serde_json::to_string(&r).unwrap();
        assert_eq!(plain, stamped, "engine mode must never leak into serialized reports");
        let mut other = report();
        other.engine = Some(EngineMode::SingleThread);
        assert_eq!(r, other, "equality ignores the engine stamp");
        assert_eq!(EngineMode::Sharded { shards: 4 }.to_string(), "sharded:4");
        assert_eq!(EngineMode::SingleThread.to_string(), "single-thread");
    }
}
