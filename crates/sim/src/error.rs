//! Simulation errors.

use pim_isa::{CoreId, Tag};
use std::error::Error;
use std::fmt;

/// The simulator could not make progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A `RECV` waits for a `SEND` that never executes (malformed
    /// schedule).
    Deadlock {
        /// The blocked core.
        core: CoreId,
        /// The tag it is waiting on.
        tag: Tag,
    },
    /// A program references more cores than the chip has.
    CoreCountMismatch {
        /// Cores in the program.
        program_cores: usize,
        /// Cores on the chip.
        chip_cores: usize,
    },
    /// The system description does not fit the topology (wrong chip
    /// count, broken link graph, or a hand-off to a chip that cannot
    /// be reached).
    InvalidTopology(
        /// Human-readable reason.
        String,
    ),
    /// The serving configuration cannot drive the system (unsorted or
    /// negative trace arrivals, no chip with work, zero-capacity
    /// buffer).
    InvalidServing(
        /// Human-readable reason.
        String,
    ),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { core, tag } => {
                write!(f, "deadlock: {core} blocked on recv {tag} with no matching send")
            }
            SimError::CoreCountMismatch { program_cores, chip_cores } => {
                write!(f, "program targets {program_cores} cores but chip has {chip_cores}")
            }
            SimError::InvalidTopology(reason) => {
                write!(f, "invalid system topology: {reason}")
            }
            SimError::InvalidServing(reason) => {
                write!(f, "invalid serving configuration: {reason}")
            }
        }
    }
}

impl Error for SimError {}
