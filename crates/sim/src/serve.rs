//! The open-loop serving frontend: request arrivals, batching, and
//! tail-latency accounting.
//!
//! Everything else in this crate runs a *closed-loop* batch job — a
//! fixed round count decided up front. Online inference serving is the
//! opposite shape: requests arrive on their own clock (a Poisson or
//! bursty MMPP process, or a replayed trace), queue in a
//! [`RequestBuffer`] under a [`BatchPolicy`], and each admitted batch
//! becomes one pipeline round appended to the live
//! [`crate::SystemSimulator`] round machinery. The per-request
//! timeline (arrival → round start → round finish) folds into a
//! [`ServingReport`] with nearest-rank p50/p99/p999 latency, queueing
//! delay, goodput and drop counts.
//!
//! The arrival stream is a pure function of the traffic spec (and
//! seed), never of the simulated system: replaying the same traffic
//! against two configurations compares them under identical load.

use crate::components::ChipEvent;
use crate::error::SimError;
use pim_engine::{ArrivalGen, Component, ComponentId, EngineCtx, Event, SimTime, TrafficModel};
use serde::{Deserialize, Serialize};
use std::any::Any;

/// A replayable request-arrival trace: absolute arrival instants in
/// nanoseconds, non-decreasing. The JSON form is the interchange
/// format — generate once with [`RequestTrace::synthesize`], commit,
/// and every replay sees byte-identical traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Absolute arrival instants, ns, sorted ascending.
    pub arrivals_ns: Vec<f64>,
}

impl RequestTrace {
    /// Samples `requests` arrivals from `model` seeded with `seed`.
    /// Deterministic: same `(model, seed, requests)` → the same trace,
    /// bit for bit. A model that runs dry (zero rates) yields a
    /// shorter — possibly empty — trace.
    pub fn synthesize(model: TrafficModel, seed: u64, requests: usize) -> Self {
        let mut arrivals = ArrivalGen::new(model, seed);
        let mut arrivals_ns = Vec::with_capacity(requests);
        let mut now_ns = 0.0;
        for _ in 0..requests {
            let Some(gap) = arrivals.next_gap_ns() else { break };
            now_ns += gap;
            arrivals_ns.push(now_ns);
        }
        Self { arrivals_ns }
    }
}

/// Where a serving run's requests come from.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficSpec {
    /// Sample arrivals from a [`TrafficModel`] at run time (still
    /// deterministic per seed — the synthetic path is exactly
    /// [`RequestTrace::synthesize`] inlined).
    Synthetic {
        /// The arrival process.
        model: TrafficModel,
        /// RNG seed; the arrival stream is a pure function of
        /// `(model, seed)`.
        seed: u64,
        /// Number of requests to generate.
        requests: usize,
    },
    /// Replay a pre-recorded (or pre-generated) trace.
    Trace(RequestTrace),
}

impl TrafficSpec {
    /// Resolves the spec to absolute arrival instants.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidServing`] when a replayed trace is unsorted
    /// or carries a negative/non-finite arrival.
    pub fn arrivals(&self) -> Result<Vec<f64>, SimError> {
        match self {
            TrafficSpec::Synthetic { model, seed, requests } => {
                Ok(RequestTrace::synthesize(*model, *seed, *requests).arrivals_ns)
            }
            TrafficSpec::Trace(trace) => {
                let arrivals = &trace.arrivals_ns;
                for (i, &t) in arrivals.iter().enumerate() {
                    if !t.is_finite() || t < 0.0 {
                        return Err(SimError::InvalidServing(format!(
                            "trace arrival {i} is {t}, not a finite non-negative time"
                        )));
                    }
                    if i > 0 && t < arrivals[i - 1] {
                        return Err(SimError::InvalidServing(format!(
                            "trace arrivals must be non-decreasing: arrival {i} at {t} ns \
                             precedes arrival {} at {} ns",
                            i - 1,
                            arrivals[i - 1]
                        )));
                    }
                }
                Ok(arrivals.clone())
            }
        }
    }
}

/// When the request buffer cuts a batch (= one pipeline round).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// Dispatch every request as its own round the moment capacity
    /// allows — minimum queueing, maximum rounds.
    Immediate,
    /// Wait for a full batch of this size; partial batches flush only
    /// when the source runs dry.
    MaxSize(
        /// Requests per batch (at least 1).
        usize,
    ),
    /// Batch-versus-deadline: cut at `max_size`, or when the oldest
    /// queued request has waited `timeout_ns` — the classic bounded
    /// batching latency knob.
    Deadline {
        /// Requests per batch (at least 1).
        max_size: usize,
        /// Longest the oldest queued request may wait before a
        /// partial batch is cut anyway.
        timeout_ns: f64,
    },
}

impl BatchPolicy {
    /// Largest batch this policy ever cuts.
    fn max_batch(&self) -> usize {
        match *self {
            BatchPolicy::Immediate => 1,
            BatchPolicy::MaxSize(n) | BatchPolicy::Deadline { max_size: n, .. } => n,
        }
    }
}

/// Configuration of one open-loop serving run — see
/// [`crate::SystemSimulator::run_serving`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// The request arrival stream.
    pub traffic: TrafficSpec,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Queued requests beyond this are dropped (admission control).
    pub queue_capacity: usize,
    /// Rounds allowed in flight at once before batch formation
    /// backpressures (at least 1).
    pub max_inflight: usize,
    /// Latency SLO; requests finishing later count as violations and
    /// fall out of goodput. `None` counts every completion as good.
    pub slo_ns: Option<f64>,
}

impl ServingConfig {
    /// A config serving `traffic` with immediate dispatch, a
    /// 1024-request queue, two rounds in flight, and no SLO.
    pub fn new(traffic: TrafficSpec) -> Self {
        Self {
            traffic,
            policy: BatchPolicy::Immediate,
            queue_capacity: 1024,
            max_inflight: 2,
            slo_ns: None,
        }
    }

    /// Sets the batch-formation policy.
    pub fn with_policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the queue capacity (requests beyond it are dropped).
    pub fn with_queue_capacity(mut self, requests: usize) -> Self {
        self.queue_capacity = requests;
        self
    }

    /// Sets the in-flight round limit.
    pub fn with_max_inflight(mut self, rounds: usize) -> Self {
        self.max_inflight = rounds;
        self
    }

    /// Sets the latency SLO in nanoseconds.
    pub fn with_slo_ns(mut self, slo_ns: f64) -> Self {
        self.slo_ns = Some(slo_ns);
        self
    }
}

/// One served request's timeline within a [`ServingReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Arrival instant, ns.
    pub arrival_ns: f64,
    /// The pipeline round (batch) that served it.
    pub round: usize,
    /// Instant its round started executing, ns.
    pub start_ns: f64,
    /// Instant its round fully drained (all chips), ns.
    pub finish_ns: f64,
}

impl RequestRecord {
    /// Queueing delay: round start minus arrival, ns.
    pub fn queue_ns(&self) -> f64 {
        self.start_ns - self.arrival_ns
    }

    /// End-to-end latency: round finish minus arrival, ns.
    pub fn latency_ns(&self) -> f64 {
        self.finish_ns - self.arrival_ns
    }
}

/// The per-request section of a serving-mode [`crate::SimReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests admitted and served to completion.
    pub requests: usize,
    /// Requests dropped at the full queue.
    pub dropped: usize,
    /// Pipeline rounds (batches) dispatched.
    pub rounds: usize,
    /// Median end-to-end latency, ns (nearest-rank).
    pub p50_ns: f64,
    /// 99th-percentile latency, ns (nearest-rank).
    pub p99_ns: f64,
    /// 99.9th-percentile latency, ns (nearest-rank).
    pub p999_ns: f64,
    /// Mean queueing delay, ns.
    pub mean_queue_ns: f64,
    /// Requests completed within the SLO per second of makespan (all
    /// completions when no SLO is set).
    pub goodput_rps: f64,
    /// Completions that missed the SLO.
    pub slo_violations: usize,
    /// Per-request timelines, in admission order.
    pub records: Vec<RequestRecord>,
}

/// Nearest-rank percentile of an ascending-`sorted` sample: the value
/// at rank `ceil(q · n)` (1-based), clamped into the sample — so
/// `q = 0.5` of `[1, 2, 3, 4]` is 2, and any `q` of a single sample is
/// that sample. Empty samples report 0.0.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The open-loop request source: walks its arrival schedule and
/// forwards one [`ChipEvent::NewRequest`] per arrival to the buffer,
/// then a terminal [`ChipEvent::SourceDrained`]. The schedule is fixed
/// at construction — arrivals never react to the system (open loop).
pub(crate) struct RequestSource {
    arrivals_ns: Vec<f64>,
    next: usize,
    buffer: ComponentId,
}

impl RequestSource {
    pub(crate) fn new(arrivals_ns: Vec<f64>, buffer: ComponentId) -> Self {
        Self { arrivals_ns, next: 0, buffer }
    }

    /// Schedules the next self-tick, or tells the buffer the stream is
    /// over.
    fn advance(&mut self, me: ComponentId, ctx: &mut EngineCtx<'_, ChipEvent>) {
        match self.arrivals_ns.get(self.next) {
            Some(&at) => ctx.schedule(SimTime::from_ns(at), me, ChipEvent::Arrival),
            None => ctx.schedule(ctx.now(), self.buffer, ChipEvent::SourceDrained),
        }
    }
}

impl Component<ChipEvent> for RequestSource {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        match event.payload {
            ChipEvent::Kick => self.advance(event.target, ctx),
            ChipEvent::Arrival => {
                ctx.schedule(event.time, self.buffer, ChipEvent::NewRequest);
                self.next += 1;
                self.advance(event.target, ctx);
            }
            other => unreachable!("request source received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The request buffer + dispatcher: queues arrivals under admission
/// control, cuts batches per the [`BatchPolicy`], and appends one
/// pipeline round per batch to every active chip's sequencer
/// ([`ChipEvent::AppendRound`]). Backpressure is the in-flight round
/// limit: a cut is deferred until the slowest chip's completed-round
/// count ([`ChipEvent::RoundDone`]) catches up.
pub(crate) struct RequestBuffer {
    policy: BatchPolicy,
    queue_capacity: usize,
    max_inflight: usize,
    /// Active chips: `(chip index, sequencer address)`.
    sequencers: Vec<(usize, ComponentId)>,
    /// Rounds each active chip has completed, parallel to
    /// `sequencers`.
    completed: Vec<usize>,
    /// Arrival instants of queued requests, oldest first.
    queue: Vec<f64>,
    /// Batch generation — stale [`ChipEvent::FlushDeadline`] timers
    /// carry an older value and are ignored.
    generation: u64,
    /// A deadline fired while backpressured: cut as soon as a round
    /// slot frees, even below `max_size`.
    deadline_due: bool,
    /// The source has emitted its last arrival.
    drained: bool,
    /// Rounds dispatched so far.
    pub(crate) formed: usize,
    /// `(arrival instant, round)` per admitted request, in admission
    /// order.
    pub(crate) admitted: Vec<(f64, usize)>,
    /// Requests dropped at the full queue.
    pub(crate) dropped: usize,
}

impl RequestBuffer {
    pub(crate) fn new(config: &ServingConfig, sequencers: Vec<(usize, ComponentId)>) -> Self {
        let completed = vec![0; sequencers.len()];
        Self {
            policy: config.policy,
            queue_capacity: config.queue_capacity,
            max_inflight: config.max_inflight,
            sequencers,
            completed,
            queue: Vec::new(),
            generation: 0,
            deadline_due: false,
            drained: false,
            formed: 0,
            admitted: Vec::new(),
            dropped: 0,
        }
    }

    /// Rounds dispatched but not yet completed by every active chip.
    fn inflight(&self) -> usize {
        self.formed - self.completed.iter().copied().min().unwrap_or(0)
    }

    /// Whether the queue currently justifies cutting a batch.
    fn batch_due(&self) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        match self.policy {
            BatchPolicy::Immediate => true,
            BatchPolicy::MaxSize(n) => self.queue.len() >= n || self.drained,
            BatchPolicy::Deadline { max_size, .. } => {
                self.queue.len() >= max_size || self.drained || self.deadline_due
            }
        }
    }

    /// Cuts every batch that is due and fits under the in-flight
    /// limit.
    fn try_cut(&mut self, me: ComponentId, ctx: &mut EngineCtx<'_, ChipEvent>) {
        while self.inflight() < self.max_inflight && self.batch_due() {
            self.cut(me, ctx);
        }
    }

    /// Cuts one batch: admits the oldest queued requests as round
    /// `formed` and broadcasts the round to every active sequencer.
    fn cut(&mut self, me: ComponentId, ctx: &mut EngineCtx<'_, ChipEvent>) {
        let take = self.queue.len().min(self.policy.max_batch());
        let round = self.formed;
        self.formed += 1;
        for arrival in self.queue.drain(..take) {
            self.admitted.push((arrival, round));
        }
        self.generation += 1;
        self.deadline_due = false;
        let now = ctx.now();
        for &(_, sequencer) in &self.sequencers {
            ctx.schedule(now, sequencer, ChipEvent::AppendRound);
        }
        self.arm_deadline(me, ctx);
    }

    /// (Re)arms the flush timer for the oldest queued request, if the
    /// policy has one.
    fn arm_deadline(&mut self, me: ComponentId, ctx: &mut EngineCtx<'_, ChipEvent>) {
        let BatchPolicy::Deadline { timeout_ns, .. } = self.policy else { return };
        let Some(&oldest) = self.queue.first() else { return };
        let due = SimTime::from_ns((oldest + timeout_ns).max(ctx.now().as_ns()));
        ctx.schedule(due, me, ChipEvent::FlushDeadline { generation: self.generation });
    }
}

impl Component<ChipEvent> for RequestBuffer {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        let me = event.target;
        match event.payload {
            ChipEvent::NewRequest => {
                if self.queue.len() >= self.queue_capacity {
                    self.dropped += 1;
                    return;
                }
                self.queue.push(event.time.as_ns());
                if self.queue.len() == 1 {
                    self.arm_deadline(me, ctx);
                }
                self.try_cut(me, ctx);
            }
            ChipEvent::SourceDrained => {
                self.drained = true;
                self.try_cut(me, ctx);
            }
            ChipEvent::FlushDeadline { generation } => {
                if generation != self.generation {
                    return;
                }
                self.deadline_due = true;
                self.try_cut(me, ctx);
            }
            ChipEvent::RoundDone { chip } => {
                let slot = self
                    .sequencers
                    .iter()
                    .position(|&(c, _)| c == chip)
                    .expect("round reports come from registered sequencers");
                self.completed[slot] += 1;
                self.try_cut(me, ctx);
            }
            other => unreachable!("request buffer received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sample = [10.0, 20.0, 30.0, 40.0];
        // ceil(0.5 * 4) = 2 → the *lower* median, per nearest-rank.
        assert_eq!(percentile(&sample, 0.5), 20.0);
        assert_eq!(percentile(&sample, 0.25), 10.0);
        // Anything past the last rank boundary lands on the max.
        assert_eq!(percentile(&sample, 0.76), 40.0);
        assert_eq!(percentile(&sample, 0.99), 40.0);
        assert_eq!(percentile(&sample, 1.0), 40.0);
        // Tie values: the rank picks the tied value either side.
        let tied = [1.0, 2.0, 2.0, 2.0, 3.0];
        assert_eq!(percentile(&tied, 0.5), 2.0);
        assert_eq!(percentile(&tied, 0.4), 2.0);
        assert_eq!(percentile(&tied, 0.8), 2.0);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.99), 0.0, "empty buffer reports zero");
        let single = [42.0];
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(percentile(&single, q), 42.0, "single request is every percentile");
        }
        // q = 0 clamps up to rank 1 instead of underflowing.
        assert_eq!(percentile(&[5.0, 6.0], 0.0), 5.0);
    }

    #[test]
    fn synthesized_traces_are_seed_deterministic() {
        let model = TrafficModel::Poisson { rate_per_s: 1e6 };
        let a = RequestTrace::synthesize(model, 9, 100);
        let b = RequestTrace::synthesize(model, 9, 100);
        assert_eq!(a, b);
        assert_eq!(a.arrivals_ns.len(), 100);
        assert!(a.arrivals_ns.windows(2).all(|w| w[0] <= w[1]), "arrivals sorted");
        let c = RequestTrace::synthesize(model, 10, 100);
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn trace_round_trips_byte_identically() {
        let model = TrafficModel::Mmpp {
            calm_rate_per_s: 1e5,
            burst_rate_per_s: 1e6,
            mean_calm_s: 1e-3,
            mean_burst_s: 1e-4,
        };
        let trace = RequestTrace::synthesize(model, 21, 64);
        let json = serde_json::to_string(&trace).unwrap();
        let back: RequestTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace, "values survive the round trip");
        let again = serde_json::to_string(&back).unwrap();
        assert_eq!(json, again, "re-serialization is byte-identical");
        // And the replayed spec resolves to the same arrivals as the
        // synthetic one.
        let synthetic =
            TrafficSpec::Synthetic { model, seed: 21, requests: 64 }.arrivals().unwrap();
        assert_eq!(TrafficSpec::Trace(back).arrivals().unwrap(), synthetic);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        let unsorted = TrafficSpec::Trace(RequestTrace { arrivals_ns: vec![5.0, 3.0] });
        assert!(matches!(unsorted.arrivals(), Err(SimError::InvalidServing(_))));
        let negative = TrafficSpec::Trace(RequestTrace { arrivals_ns: vec![-1.0] });
        assert!(matches!(negative.arrivals(), Err(SimError::InvalidServing(_))));
        let nan = TrafficSpec::Trace(RequestTrace { arrivals_ns: vec![f64::NAN] });
        assert!(matches!(nan.arrivals(), Err(SimError::InvalidServing(_))));
    }

    #[test]
    fn config_builder_sets_knobs() {
        let trace = TrafficSpec::Trace(RequestTrace { arrivals_ns: vec![0.0] });
        let config = ServingConfig::new(trace)
            .with_policy(BatchPolicy::Deadline { max_size: 8, timeout_ns: 5e3 })
            .with_queue_capacity(32)
            .with_max_inflight(4)
            .with_slo_ns(1e6);
        assert_eq!(config.policy, BatchPolicy::Deadline { max_size: 8, timeout_ns: 5e3 });
        assert_eq!(config.queue_capacity, 32);
        assert_eq!(config.max_inflight, 4);
        assert_eq!(config.slo_ns, Some(1e6));
    }
}
