//! The open-loop serving frontend: request arrivals, batching, and
//! tail-latency accounting.
//!
//! Everything else in this crate runs a *closed-loop* batch job — a
//! fixed round count decided up front. Online inference serving is the
//! opposite shape: requests arrive on their own clock (a Poisson or
//! bursty MMPP process, or a replayed trace), queue in a
//! [`RequestBuffer`] under a [`BatchPolicy`], and each admitted batch
//! becomes one pipeline round appended to the live
//! [`crate::SystemSimulator`] round machinery. The per-request
//! timeline (arrival → round start → round finish) folds into a
//! [`ServingReport`] with nearest-rank p50/p99/p999 latency, queueing
//! delay, goodput and drop counts.
//!
//! The arrival stream is a pure function of the traffic spec (and
//! seed), never of the simulated system: replaying the same traffic
//! against two configurations compares them under identical load.

use crate::components::ChipEvent;
use crate::error::SimError;
use pim_engine::{ArrivalGen, Component, ComponentId, EngineCtx, Event, SimTime, TrafficModel};
use serde::{Deserialize, Serialize};
use std::any::Any;

/// A replayable request-arrival trace: absolute arrival instants in
/// nanoseconds, non-decreasing. The JSON form is the interchange
/// format — generate once with [`RequestTrace::synthesize`], commit,
/// and every replay sees byte-identical traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Absolute arrival instants, ns, sorted ascending.
    pub arrivals_ns: Vec<f64>,
}

impl RequestTrace {
    /// Samples `requests` arrivals from `model` seeded with `seed`.
    /// Deterministic: same `(model, seed, requests)` → the same trace,
    /// bit for bit. A model that runs dry (zero rates) yields a
    /// shorter — possibly empty — trace.
    pub fn synthesize(model: TrafficModel, seed: u64, requests: usize) -> Self {
        let mut arrivals = ArrivalGen::new(model, seed);
        let mut arrivals_ns = Vec::new();
        arrivals.fill_arrivals_ns(0.0, requests, &mut arrivals_ns);
        Self { arrivals_ns }
    }
}

/// Where a serving run's requests come from.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficSpec {
    /// Sample arrivals from a [`TrafficModel`] at run time (still
    /// deterministic per seed — the synthetic path is exactly
    /// [`RequestTrace::synthesize`] inlined).
    Synthetic {
        /// The arrival process.
        model: TrafficModel,
        /// RNG seed; the arrival stream is a pure function of
        /// `(model, seed)`.
        seed: u64,
        /// Number of requests to generate.
        requests: usize,
    },
    /// Replay a pre-recorded (or pre-generated) trace.
    Trace(RequestTrace),
}

impl TrafficSpec {
    /// Resolves the spec to absolute arrival instants.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidServing`] when a replayed trace is unsorted
    /// or carries a negative/non-finite arrival.
    pub fn arrivals(&self) -> Result<Vec<f64>, SimError> {
        match self {
            TrafficSpec::Synthetic { model, seed, requests } => {
                Ok(RequestTrace::synthesize(*model, *seed, *requests).arrivals_ns)
            }
            TrafficSpec::Trace(trace) => {
                let arrivals = &trace.arrivals_ns;
                for (i, &t) in arrivals.iter().enumerate() {
                    if !t.is_finite() || t < 0.0 {
                        return Err(SimError::InvalidServing(format!(
                            "trace arrival {i} is {t}, not a finite non-negative time"
                        )));
                    }
                    if i > 0 && t < arrivals[i - 1] {
                        return Err(SimError::InvalidServing(format!(
                            "trace arrivals must be non-decreasing: arrival {i} at {t} ns \
                             precedes arrival {} at {} ns",
                            i - 1,
                            arrivals[i - 1]
                        )));
                    }
                }
                Ok(arrivals.clone())
            }
        }
    }
}

/// When the request buffer cuts a batch (= one pipeline round).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// Dispatch every request as its own round the moment capacity
    /// allows — minimum queueing, maximum rounds.
    Immediate,
    /// Wait for a full batch of this size; partial batches flush only
    /// when the source runs dry.
    MaxSize(
        /// Requests per batch (at least 1).
        usize,
    ),
    /// Batch-versus-deadline: cut at `max_size`, or when the oldest
    /// queued request has waited `timeout_ns` — the classic bounded
    /// batching latency knob.
    Deadline {
        /// Requests per batch (at least 1).
        max_size: usize,
        /// Longest the oldest queued request may wait before a
        /// partial batch is cut anyway.
        timeout_ns: f64,
    },
}

impl BatchPolicy {
    /// Largest batch this policy ever cuts.
    fn max_batch(&self) -> usize {
        match *self {
            BatchPolicy::Immediate => 1,
            BatchPolicy::MaxSize(n) | BatchPolicy::Deadline { max_size: n, .. } => n,
        }
    }
}

/// Configuration of one open-loop serving run — see
/// [`crate::SystemSimulator::run_serving`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// The request arrival stream.
    pub traffic: TrafficSpec,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Queued requests beyond this are dropped (admission control).
    pub queue_capacity: usize,
    /// Rounds allowed in flight at once before batch formation
    /// backpressures (at least 1).
    pub max_inflight: usize,
    /// Latency SLO; requests finishing later count as violations and
    /// fall out of goodput. `None` counts every completion as good.
    pub slo_ns: Option<f64>,
}

impl ServingConfig {
    /// A config serving `traffic` with immediate dispatch, a
    /// 1024-request queue, two rounds in flight, and no SLO.
    pub fn new(traffic: TrafficSpec) -> Self {
        Self {
            traffic,
            policy: BatchPolicy::Immediate,
            queue_capacity: 1024,
            max_inflight: 2,
            slo_ns: None,
        }
    }

    /// Sets the batch-formation policy.
    pub fn with_policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the queue capacity (requests beyond it are dropped).
    pub fn with_queue_capacity(mut self, requests: usize) -> Self {
        self.queue_capacity = requests;
        self
    }

    /// Sets the in-flight round limit.
    pub fn with_max_inflight(mut self, rounds: usize) -> Self {
        self.max_inflight = rounds;
        self
    }

    /// Sets the latency SLO in nanoseconds.
    pub fn with_slo_ns(mut self, slo_ns: f64) -> Self {
        self.slo_ns = Some(slo_ns);
        self
    }
}

/// One served request's timeline within a [`ServingReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Arrival instant, ns.
    pub arrival_ns: f64,
    /// The pipeline round (batch) that served it.
    pub round: usize,
    /// Instant its round started executing, ns.
    pub start_ns: f64,
    /// Instant its round fully drained (all chips), ns.
    pub finish_ns: f64,
}

impl RequestRecord {
    /// Queueing delay: round start minus arrival, ns.
    pub fn queue_ns(&self) -> f64 {
        self.start_ns - self.arrival_ns
    }

    /// End-to-end latency: round finish minus arrival, ns.
    pub fn latency_ns(&self) -> f64 {
        self.finish_ns - self.arrival_ns
    }
}

/// The per-request section of a serving-mode [`crate::SimReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests admitted and served to completion.
    pub requests: usize,
    /// Requests dropped at the full queue.
    pub dropped: usize,
    /// Pipeline rounds (batches) dispatched.
    pub rounds: usize,
    /// Median end-to-end latency, ns (nearest-rank).
    pub p50_ns: f64,
    /// 99th-percentile latency, ns (nearest-rank).
    pub p99_ns: f64,
    /// 99.9th-percentile latency, ns (nearest-rank).
    pub p999_ns: f64,
    /// Mean queueing delay, ns.
    pub mean_queue_ns: f64,
    /// Requests completed within the SLO per second of makespan (all
    /// completions when no SLO is set).
    pub goodput_rps: f64,
    /// Completions that missed the SLO.
    pub slo_violations: usize,
    /// Per-request timelines, in admission order.
    pub records: Vec<RequestRecord>,
}

/// Nearest-rank percentile of an ascending-`sorted` sample: the value
/// at rank `ceil(q · n)` (1-based), clamped into the sample — so
/// `q = 0.5` of `[1, 2, 3, 4]` is 2, and any `q` of a single sample is
/// that sample. Empty samples report 0.0.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Exact nearest-rank percentiles of an *unsorted* sample, one value
/// per entry of `qs`, without the full sort: each quantile is one
/// quickselect (`select_nth_unstable` under `f64::total_cmp`), and
/// quantiles are resolved in ascending rank order over the shrinking
/// unpartitioned tail, so the whole batch is O(n) expected instead of
/// the O(n log n) sort [`percentile`] needs. The values are identical
/// to sorting the sample and applying [`percentile`] — the k-th order
/// statistic does not depend on how it was found. `sample` is
/// reordered in place; empty samples report 0.0 for every quantile.
pub fn percentiles(sample: &mut [f64], qs: &[f64]) -> Vec<f64> {
    let n = sample.len();
    if n == 0 {
        return vec![0.0; qs.len()];
    }
    let rank = |q: f64| ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    let mut order: Vec<usize> = (0..qs.len()).collect();
    order.sort_by_key(|&i| rank(qs[i]));
    let mut out = vec![0.0; qs.len()];
    // Everything below `base` is already partitioned to its final
    // position by an earlier select, so later (larger) ranks only
    // search the tail.
    let mut base = 0;
    let mut prev: Option<usize> = None;
    for &i in &order {
        let r = rank(qs[i]);
        if prev == Some(r) {
            // `select_nth_unstable` left the value in place.
            out[i] = sample[r];
            continue;
        }
        let (_, value, _) = sample[base..].select_nth_unstable_by(r - base, |a, b| a.total_cmp(b));
        out[i] = *value;
        base = r + 1;
        prev = Some(r);
    }
    out
}

/// The admission latency of the request buffer, in nanoseconds: a cut
/// at instant `t` delivers its [`ChipEvent::AppendRound`]s at
/// `t + ADMISSION_LATENCY_NS`. The value is an exact binary fraction
/// (2⁻¹², ~0.24 ps) so the addition is lossless against every
/// realistic simulated timestamp, and it is far below any physical
/// latency in the model, so it never reorders real work.
///
/// The strictly positive delay is load-bearing for sharded serving:
/// it is what gives the conservative shard protocol a non-zero edge
/// weight between "the buffer cuts a batch" and "a chip receives the
/// appended round". With a zero-latency admission, a shard whose next
/// event is the round it is itself waiting for would need a window
/// strictly past its own frontier — a zero-weight cycle the lookahead
/// protocol cannot break. Both engines apply the same delay, so their
/// reports stay byte-identical.
pub const ADMISSION_LATENCY_NS: f64 = 1.0 / 4096.0;

/// The default [`RequestSource`] chunk: how many arrivals are
/// pre-scheduled per self-tick. Large enough that per-request source
/// overhead vanishes, small enough that the engine queue never holds
/// more than a bounded slab of far-future arrivals.
pub(crate) const ARRIVAL_CHUNK: usize = 512;

/// The open-loop request source: pre-schedules its arrival schedule as
/// [`ChipEvent::NewRequest`]s a chunk at a time (one self-tick per
/// `chunk` arrivals instead of one per arrival), then a terminal
/// [`ChipEvent::SourceDrained`] at the last arrival's instant. The
/// schedule is fixed at construction — arrivals never react to the
/// system (open loop) — and chunking only batches event scheduling:
/// every `NewRequest` still fires at its exact arrival instant, in
/// arrival order.
pub(crate) struct RequestSource {
    arrivals_ns: Vec<f64>,
    next: usize,
    chunk: usize,
    buffer: ComponentId,
}

impl RequestSource {
    pub(crate) fn new(arrivals_ns: Vec<f64>, buffer: ComponentId, chunk: usize) -> Self {
        Self { arrivals_ns, next: 0, chunk: chunk.max(1), buffer }
    }

    /// Schedules the next chunk of arrivals, then either a resume tick
    /// at the chunk's last instant (every remaining arrival is at or
    /// past it, so the next chunk schedules forward from there) or —
    /// once the schedule is exhausted — the drain marker, after the
    /// final `NewRequest` at the same instant.
    fn advance(&mut self, me: ComponentId, ctx: &mut EngineCtx<'_, ChipEvent>) {
        let end = (self.next + self.chunk).min(self.arrivals_ns.len());
        for &at in &self.arrivals_ns[self.next..end] {
            ctx.schedule(SimTime::from_ns(at), self.buffer, ChipEvent::NewRequest);
        }
        self.next = end;
        if end == self.arrivals_ns.len() {
            let at = self.arrivals_ns.last().map_or(ctx.now(), |&ns| SimTime::from_ns(ns));
            ctx.schedule(at, self.buffer, ChipEvent::SourceDrained);
        } else {
            ctx.schedule(SimTime::from_ns(self.arrivals_ns[end - 1]), me, ChipEvent::Arrival);
        }
    }
}

impl Component<ChipEvent> for RequestSource {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        match event.payload {
            ChipEvent::Kick | ChipEvent::Arrival => self.advance(event.target, ctx),
            other => unreachable!("request source received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Where a [`BufferCore`] transition's side effects land. The core is
/// a pure state machine shared by both execution engines; the sink is
/// what differs — the single-threaded engine schedules real events,
/// the sharded boundary queues admissions for cross-shard release and
/// arms its own timer heap. Keeping every effect behind this trait is
/// what makes the two engines' serving reports byte-identical: there
/// is exactly one copy of the batching logic.
pub(crate) trait AdmissionSink {
    /// Deliver one appended round to every active chip. The cut
    /// happened at `cut_ns`; delivery is at
    /// `cut_ns + `[`ADMISSION_LATENCY_NS`].
    fn admit_round(&mut self, cut_ns: f64);

    /// Arm the flush timer for `due_ns`, carrying `generation` so a
    /// stale timer can be recognized and ignored when it fires.
    fn arm_deadline(&mut self, due_ns: f64, generation: u64);
}

/// The engine-independent request-buffer state machine: queues
/// arrivals under admission control, cuts batches per the
/// [`BatchPolicy`], and counts per-chip round completions for the
/// in-flight backpressure limit. Each transition takes the current
/// instant and an [`AdmissionSink`] for its effects; the transition
/// order is the caller's responsibility (the single engine's event
/// queue, or the sharded frontend's merged arrival/timer/completion
/// stream).
pub(crate) struct BufferCore {
    policy: BatchPolicy,
    queue_capacity: usize,
    max_inflight: usize,
    /// Active chip indices, in admission fan-out order.
    chips: Vec<usize>,
    /// Rounds each active chip has completed, parallel to `chips`.
    completed: Vec<usize>,
    /// Arrival instants of queued requests, oldest first.
    queue: Vec<f64>,
    /// Batch generation — stale flush timers carry an older value and
    /// are ignored.
    generation: u64,
    /// A deadline fired while backpressured: cut as soon as a round
    /// slot frees, even below `max_size`.
    deadline_due: bool,
    /// The source has emitted its last arrival.
    drained: bool,
    /// Rounds dispatched so far.
    pub(crate) formed: usize,
    /// `(arrival instant, round)` per admitted request, in admission
    /// order.
    pub(crate) admitted: Vec<(f64, usize)>,
    /// Requests dropped at the full queue.
    pub(crate) dropped: usize,
}

impl BufferCore {
    pub(crate) fn new(config: &ServingConfig, chips: Vec<usize>) -> Self {
        let completed = vec![0; chips.len()];
        Self {
            policy: config.policy,
            queue_capacity: config.queue_capacity,
            max_inflight: config.max_inflight,
            chips,
            completed,
            queue: Vec::new(),
            generation: 0,
            deadline_due: false,
            drained: false,
            formed: 0,
            admitted: Vec::new(),
            dropped: 0,
        }
    }

    /// Rounds dispatched but not yet completed by every active chip.
    fn inflight(&self) -> usize {
        self.formed - self.completed.iter().copied().min().unwrap_or(0)
    }

    /// Whether the queue currently justifies cutting a batch.
    fn batch_due(&self) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        match self.policy {
            BatchPolicy::Immediate => true,
            BatchPolicy::MaxSize(n) => self.queue.len() >= n || self.drained,
            BatchPolicy::Deadline { max_size, .. } => {
                self.queue.len() >= max_size || self.drained || self.deadline_due
            }
        }
    }

    /// Whether the next cut is waiting on a round completion: a batch
    /// is due but every in-flight slot is taken, so the next
    /// admission will be triggered by a [`Self::on_round_done`]. The
    /// sharded frontend folds this into its admission horizon — it is
    /// the only state in which a chip's own progress can move the
    /// buffer.
    #[cfg_attr(not(feature = "sharded"), allow(dead_code))]
    pub(crate) fn awaiting_capacity(&self) -> bool {
        self.batch_due() && self.inflight() >= self.max_inflight
    }

    /// A request arrived at `now_ns`.
    pub(crate) fn on_new_request(&mut self, now_ns: f64, sink: &mut dyn AdmissionSink) {
        if self.queue.len() >= self.queue_capacity {
            self.dropped += 1;
            return;
        }
        self.queue.push(now_ns);
        if self.queue.len() == 1 {
            self.arm_deadline(now_ns, sink);
        }
        self.try_cut(now_ns, sink);
    }

    /// The source emitted its last arrival (at `now_ns`).
    pub(crate) fn on_source_drained(&mut self, now_ns: f64, sink: &mut dyn AdmissionSink) {
        self.drained = true;
        self.try_cut(now_ns, sink);
    }

    /// A flush timer fired at `now_ns`; stale generations are ignored.
    pub(crate) fn on_flush_deadline(
        &mut self,
        generation: u64,
        now_ns: f64,
        sink: &mut dyn AdmissionSink,
    ) {
        if generation != self.generation {
            return;
        }
        self.deadline_due = true;
        self.try_cut(now_ns, sink);
    }

    /// Chip `chip` finished one round at `now_ns`.
    pub(crate) fn on_round_done(&mut self, chip: usize, now_ns: f64, sink: &mut dyn AdmissionSink) {
        let slot = self
            .chips
            .iter()
            .position(|&c| c == chip)
            .expect("round reports come from registered sequencers");
        self.completed[slot] += 1;
        self.try_cut(now_ns, sink);
    }

    /// Cuts every batch that is due and fits under the in-flight
    /// limit.
    fn try_cut(&mut self, now_ns: f64, sink: &mut dyn AdmissionSink) {
        while self.inflight() < self.max_inflight && self.batch_due() {
            self.cut(now_ns, sink);
        }
    }

    /// Cuts one batch: admits the oldest queued requests as round
    /// `formed` and broadcasts the round to every active chip.
    fn cut(&mut self, now_ns: f64, sink: &mut dyn AdmissionSink) {
        let take = self.queue.len().min(self.policy.max_batch());
        let round = self.formed;
        self.formed += 1;
        for arrival in self.queue.drain(..take) {
            self.admitted.push((arrival, round));
        }
        self.generation += 1;
        self.deadline_due = false;
        sink.admit_round(now_ns);
        self.arm_deadline(now_ns, sink);
    }

    /// (Re)arms the flush timer for the oldest queued request, if the
    /// policy has one.
    fn arm_deadline(&mut self, now_ns: f64, sink: &mut dyn AdmissionSink) {
        let BatchPolicy::Deadline { timeout_ns, .. } = self.policy else { return };
        let Some(&oldest) = self.queue.first() else { return };
        sink.arm_deadline((oldest + timeout_ns).max(now_ns), self.generation);
    }
}

/// The [`AdmissionSink`] of the single-threaded engine: admissions
/// become [`ChipEvent::AppendRound`]s scheduled
/// [`ADMISSION_LATENCY_NS`] after the cut, deadline timers become
/// [`ChipEvent::FlushDeadline`] self-events.
struct EngineSink<'a, 'b> {
    me: ComponentId,
    sequencers: &'a [ComponentId],
    ctx: &'a mut EngineCtx<'b, ChipEvent>,
}

impl AdmissionSink for EngineSink<'_, '_> {
    fn admit_round(&mut self, cut_ns: f64) {
        let at = SimTime::from_ns(cut_ns + ADMISSION_LATENCY_NS);
        for &sequencer in self.sequencers {
            self.ctx.schedule(at, sequencer, ChipEvent::AppendRound);
        }
    }

    fn arm_deadline(&mut self, due_ns: f64, generation: u64) {
        self.ctx.schedule(
            SimTime::from_ns(due_ns),
            self.me,
            ChipEvent::FlushDeadline { generation },
        );
    }
}

/// The request buffer + dispatcher component of the single-threaded
/// engine: a [`BufferCore`] wired to real engine events. The sharded
/// path has no buffer component at all — the boundary holds the same
/// core and drives it from its merged frontend stream.
pub(crate) struct RequestBuffer {
    pub(crate) core: BufferCore,
    /// Active sequencer addresses, parallel to the core's chip list.
    sequencers: Vec<ComponentId>,
}

impl RequestBuffer {
    pub(crate) fn new(config: &ServingConfig, active: Vec<(usize, ComponentId)>) -> Self {
        let (chips, sequencers) = active.into_iter().unzip();
        Self { core: BufferCore::new(config, chips), sequencers }
    }
}

impl Component<ChipEvent> for RequestBuffer {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        let now_ns = event.time.as_ns();
        let mut sink = EngineSink { me: event.target, sequencers: &self.sequencers, ctx };
        match event.payload {
            ChipEvent::NewRequest => self.core.on_new_request(now_ns, &mut sink),
            ChipEvent::SourceDrained => self.core.on_source_drained(now_ns, &mut sink),
            ChipEvent::FlushDeadline { generation } => {
                self.core.on_flush_deadline(generation, now_ns, &mut sink)
            }
            ChipEvent::RoundDone { chip } => self.core.on_round_done(chip, now_ns, &mut sink),
            other => unreachable!("request buffer received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sample = [10.0, 20.0, 30.0, 40.0];
        // ceil(0.5 * 4) = 2 → the *lower* median, per nearest-rank.
        assert_eq!(percentile(&sample, 0.5), 20.0);
        assert_eq!(percentile(&sample, 0.25), 10.0);
        // Anything past the last rank boundary lands on the max.
        assert_eq!(percentile(&sample, 0.76), 40.0);
        assert_eq!(percentile(&sample, 0.99), 40.0);
        assert_eq!(percentile(&sample, 1.0), 40.0);
        // Tie values: the rank picks the tied value either side.
        let tied = [1.0, 2.0, 2.0, 2.0, 3.0];
        assert_eq!(percentile(&tied, 0.5), 2.0);
        assert_eq!(percentile(&tied, 0.4), 2.0);
        assert_eq!(percentile(&tied, 0.8), 2.0);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.99), 0.0, "empty buffer reports zero");
        let single = [42.0];
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(percentile(&single, q), 42.0, "single request is every percentile");
        }
        // q = 0 clamps up to rank 1 instead of underflowing.
        assert_eq!(percentile(&[5.0, 6.0], 0.0), 5.0);
    }

    #[test]
    fn synthesized_traces_are_seed_deterministic() {
        let model = TrafficModel::Poisson { rate_per_s: 1e6 };
        let a = RequestTrace::synthesize(model, 9, 100);
        let b = RequestTrace::synthesize(model, 9, 100);
        assert_eq!(a, b);
        assert_eq!(a.arrivals_ns.len(), 100);
        assert!(a.arrivals_ns.windows(2).all(|w| w[0] <= w[1]), "arrivals sorted");
        let c = RequestTrace::synthesize(model, 10, 100);
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn trace_round_trips_byte_identically() {
        let model = TrafficModel::Mmpp {
            calm_rate_per_s: 1e5,
            burst_rate_per_s: 1e6,
            mean_calm_s: 1e-3,
            mean_burst_s: 1e-4,
        };
        let trace = RequestTrace::synthesize(model, 21, 64);
        let json = serde_json::to_string(&trace).unwrap();
        let back: RequestTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace, "values survive the round trip");
        let again = serde_json::to_string(&back).unwrap();
        assert_eq!(json, again, "re-serialization is byte-identical");
        // And the replayed spec resolves to the same arrivals as the
        // synthetic one.
        let synthetic =
            TrafficSpec::Synthetic { model, seed: 21, requests: 64 }.arrivals().unwrap();
        assert_eq!(TrafficSpec::Trace(back).arrivals().unwrap(), synthetic);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        let unsorted = TrafficSpec::Trace(RequestTrace { arrivals_ns: vec![5.0, 3.0] });
        assert!(matches!(unsorted.arrivals(), Err(SimError::InvalidServing(_))));
        let negative = TrafficSpec::Trace(RequestTrace { arrivals_ns: vec![-1.0] });
        assert!(matches!(negative.arrivals(), Err(SimError::InvalidServing(_))));
        let nan = TrafficSpec::Trace(RequestTrace { arrivals_ns: vec![f64::NAN] });
        assert!(matches!(nan.arrivals(), Err(SimError::InvalidServing(_))));
    }

    #[test]
    fn config_builder_sets_knobs() {
        let trace = TrafficSpec::Trace(RequestTrace { arrivals_ns: vec![0.0] });
        let config = ServingConfig::new(trace)
            .with_policy(BatchPolicy::Deadline { max_size: 8, timeout_ns: 5e3 })
            .with_queue_capacity(32)
            .with_max_inflight(4)
            .with_slo_ns(1e6);
        assert_eq!(config.policy, BatchPolicy::Deadline { max_size: 8, timeout_ns: 5e3 });
        assert_eq!(config.queue_capacity, 32);
        assert_eq!(config.max_inflight, 4);
        assert_eq!(config.slo_ns, Some(1e6));
    }
}
