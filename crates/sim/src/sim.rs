//! The discrete-event chip simulator.

use crate::error::SimError;
use crate::report::{CoreActivity, PartitionSimReport, SimReport};
use pim_arch::{ChipSpec, EnergyModel, PowerBreakdown};
use pim_dram::{DramConfig, DramSimulator, RequestKind, Trace, TraceStats};
use pim_isa::{ChipProgram, CoreId, Instruction, Tag};
use std::collections::HashMap;

/// Event-driven simulator for one chip.
///
/// Shared resources: one global-memory channel (bandwidth +
/// first-access latency per block transfer) and one arbitrated bus for
/// core-to-core sends. `SEND` is buffered (the sender proceeds after
/// the bus transfer); `RECV` blocks until the matching send has
/// delivered. Partitions are separated by full-chip barriers.
#[derive(Debug, Clone)]
pub struct ChipSimulator {
    chip: ChipSpec,
    replay_dram: bool,
}

impl ChipSimulator {
    /// Creates a simulator for `chip` with DRAM-trace replay enabled.
    pub fn new(chip: ChipSpec) -> Self {
        Self { chip, replay_dram: true }
    }

    /// Enables or disables the `pim-dram` trace replay (replay refines
    /// DRAM energy but costs simulation time).
    pub fn with_dram_replay(mut self, enabled: bool) -> Self {
        self.replay_dram = enabled;
        self
    }

    /// Runs one batch cycle: every partition program in order with
    /// barriers in between.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] for malformed schedules and
    /// [`SimError::CoreCountMismatch`] when a program does not match
    /// the chip.
    pub fn run(&self, programs: &[ChipProgram], batch: usize) -> Result<SimReport, SimError> {
        let energy_model = EnergyModel::new(&self.chip);
        let mut now = 0.0f64;
        let mut partitions = Vec::with_capacity(programs.len());
        let mut trace = Trace::new();
        // Simple bump allocators give weights and activations disjoint
        // sequential regions, reproducing the row-buffer locality of
        // bulk weight streams.
        let mut weight_addr: u64 = 0;
        let mut activation_addr: u64 = 1 << 32;

        for (index, program) in programs.iter().enumerate() {
            if program.cores() > self.chip.cores {
                return Err(SimError::CoreCountMismatch {
                    program_cores: program.cores(),
                    chip_cores: self.chip.cores,
                });
            }
            let outcome = self.run_partition(
                program,
                now,
                &mut trace,
                &mut weight_addr,
                &mut activation_addr,
            )?;
            let stats = program.stats();
            let mut energy = PowerBreakdown::new();
            energy.mvm_nj = energy_model.mvm_energy_nj(stats.mvm_activations);
            energy.weight_write_nj =
                energy_model.weight_write_energy_nj(stats.weight_write_bits);
            energy.weight_load_nj = energy_model.dram_energy_nj(stats.weight_load_bytes * 8);
            energy.activation_dram_nj = energy_model
                .dram_energy_nj((stats.data_load_bytes + stats.data_store_bytes) * 8);
            energy.interconnect_nj = energy_model.bus_energy_nj(stats.interconnect_bytes);
            energy.vfu_nj = energy_model.vfu_energy_nj(stats.vfu_elements);
            partitions.push(PartitionSimReport {
                index,
                start_ns: now,
                end_ns: outcome.end_ns,
                replace_ns: outcome.replace_done_ns - now,
                stats,
                energy,
                core_activity: outcome.activity,
            });
            now = outcome.end_ns;
        }

        let mut energy =
            partitions.iter().fold(PowerBreakdown::new(), |acc, p| acc + p.energy);
        energy.static_nj = energy_model.static_energy_nj(now);

        let dram_trace = trace.stats();
        let dram_energy = if self.replay_dram && !trace.is_empty() {
            let mut dram = DramSimulator::new(DramConfig::lpddr3_1600());
            trace.replay(&mut dram);
            Some(dram.energy())
        } else {
            None
        };

        Ok(SimReport {
            batch: batch.max(1),
            partitions,
            makespan_ns: now,
            energy,
            dram_energy,
            dram_trace: if self.replay_dram { dram_trace } else { TraceStats::default() },
        })
    }

    fn run_partition(
        &self,
        program: &ChipProgram,
        start_ns: f64,
        trace: &mut Trace,
        weight_addr: &mut u64,
        activation_addr: &mut u64,
    ) -> Result<PartitionOutcome, SimError> {
        let chip = &self.chip;
        let cores = program.cores();
        let mut pc = vec![0usize; cores];
        let mut time = vec![start_ns; cores];
        let mut dram_free = start_ns;
        let mut bus_free = start_ns;
        let mut deliveries: HashMap<Tag, f64> = HashMap::new();
        let mut activity = vec![CoreActivity::default(); cores];
        let mut replace_done = start_ns;
        let vfu_rate = chip.core.vfu_throughput_per_ns();
        let dram_bw = chip.memory.bandwidth_gbps;
        let dram_lat = chip.memory.access_latency_ns;
        let bus = chip.interconnect;

        loop {
            // Pick the earliest-time core whose next instruction can
            // execute.
            let mut candidate: Option<usize> = None;
            let mut all_done = true;
            for core in 0..cores {
                let stream = program.core(CoreId(core)).instructions();
                if pc[core] >= stream.len() {
                    continue;
                }
                all_done = false;
                let ready = match stream[pc[core]] {
                    Instruction::Recv { tag, .. } => deliveries.contains_key(&tag),
                    _ => true,
                };
                if ready && candidate.map(|c| time[core] < time[c]).unwrap_or(true) {
                    candidate = Some(core);
                }
            }
            if all_done {
                break;
            }
            let Some(core) = candidate else {
                // Every unfinished core waits on a recv nobody sent.
                let core = (0..cores)
                    .find(|&c| pc[c] < program.core(CoreId(c)).len())
                    .expect("some core unfinished");
                let tag = match program.core(CoreId(core)).instructions()[pc[core]] {
                    Instruction::Recv { tag, .. } => tag,
                    _ => unreachable!("blocked cores block on recv"),
                };
                return Err(SimError::Deadlock { core: CoreId(core), tag });
            };

            let instr = program.core(CoreId(core)).instructions()[pc[core]];
            match instr {
                Instruction::LoadWeight { bytes } => {
                    let start = time[core].max(dram_free);
                    let dur = dram_lat + bytes as f64 / dram_bw;
                    trace.push_stream(start, *weight_addr, RequestKind::Read, bytes, 1 << 20);
                    *weight_addr += bytes as u64;
                    dram_free = start + bytes as f64 / dram_bw;
                    activity[core].dram_wait_ns += start - time[core];
                    activity[core].dram_ns += dur;
                    time[core] = start + dur;
                }
                Instruction::LoadData { bytes } => {
                    let start = time[core].max(dram_free);
                    let dur = dram_lat + bytes as f64 / dram_bw;
                    trace.push_stream(start, *activation_addr, RequestKind::Read, bytes, 64 << 10);
                    *activation_addr += bytes as u64;
                    dram_free = start + bytes as f64 / dram_bw;
                    activity[core].dram_wait_ns += start - time[core];
                    activity[core].dram_ns += dur;
                    time[core] = start + dur;
                }
                Instruction::StoreData { bytes } => {
                    let start = time[core].max(dram_free);
                    let dur = dram_lat + bytes as f64 / dram_bw;
                    trace.push_stream(start, *activation_addr, RequestKind::Write, bytes, 64 << 10);
                    *activation_addr += bytes as u64;
                    dram_free = start + bytes as f64 / dram_bw;
                    activity[core].dram_wait_ns += start - time[core];
                    activity[core].dram_ns += dur;
                    time[core] = start + dur;
                }
                Instruction::WriteWeight { crossbars, .. } => {
                    // Crossbars within a core write sequentially.
                    let dur = crossbars as f64 * chip.crossbar.full_write_latency_ns();
                    activity[core].write_ns += dur;
                    time[core] += dur;
                    replace_done = replace_done.max(time[core]);
                }
                Instruction::Mvmul { waves, .. } => {
                    let dur = waves as f64 * chip.crossbar.mvm_latency_ns;
                    activity[core].mvm_ns += dur;
                    time[core] += dur;
                }
                Instruction::VectorOp { elements, .. } => {
                    let dur = elements as f64 / vfu_rate;
                    activity[core].vfu_ns += dur;
                    time[core] += dur;
                }
                Instruction::Send { bytes, tag, .. } => {
                    let start = time[core].max(bus_free);
                    let done = start + bus.arbitration_ns + bus.transfer_ns(bytes);
                    bus_free = done;
                    deliveries.insert(tag, done);
                    // Buffered send: the core only pays arbitration.
                    activity[core].send_ns += start + bus.arbitration_ns - time[core];
                    time[core] = start + bus.arbitration_ns;
                }
                Instruction::Recv { tag, .. } => {
                    let delivered = deliveries[&tag];
                    if delivered > time[core] {
                        activity[core].recv_wait_ns += delivered - time[core];
                        time[core] = delivered;
                    }
                }
            }
            pc[core] += 1;
        }

        let end_ns = time.into_iter().fold(start_ns, f64::max);
        Ok(PartitionOutcome { end_ns, replace_done_ns: replace_done, activity })
    }
}

struct PartitionOutcome {
    end_ns: f64,
    replace_done_ns: f64,
    activity: Vec<CoreActivity>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass::{CompileOptions, Compiler, GaParams, Strategy};
    use pim_model::zoo;

    fn compile(
        net: &pim_model::Network,
        chip: &ChipSpec,
        strategy: Strategy,
        batch: usize,
    ) -> compass::CompiledModel {
        Compiler::new(chip.clone())
            .compile(
                net,
                &CompileOptions::new()
                    .with_strategy(strategy)
                    .with_batch_size(batch)
                    .with_ga(GaParams::fast())
                    .with_seed(3),
            )
            .expect("compilation succeeds")
    }

    #[test]
    fn simulates_compiled_tiny_cnn() {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&zoo::tiny_cnn(), &chip, Strategy::Greedy, 2);
        let report = ChipSimulator::new(chip).run(compiled.programs(), 2).unwrap();
        assert!(report.makespan_ns > 0.0);
        assert_eq!(report.partitions.len(), compiled.partitions().len());
        for p in &report.partitions {
            assert!(p.latency_ns() > 0.0);
            assert!(p.replace_ns >= 0.0);
            assert!(p.replace_ns <= p.latency_ns() + 1e-9);
        }
    }

    #[test]
    fn partitions_execute_back_to_back() {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&zoo::resnet18(), &chip, Strategy::Layerwise, 2);
        let report = ChipSimulator::new(chip).run(compiled.programs(), 2).unwrap();
        for pair in report.partitions.windows(2) {
            assert!((pair[1].start_ns - pair[0].end_ns).abs() < 1e-6, "barrier between partitions");
        }
        let last = report.partitions.last().unwrap();
        assert!((last.end_ns - report.makespan_ns).abs() < 1e-6);
    }

    #[test]
    fn larger_batch_amortizes_replacement() {
        let chip = ChipSpec::chip_s();
        let net = zoo::resnet18();
        let sim = ChipSimulator::new(chip.clone()).with_dram_replay(false);
        let c2 = compile(&net, &chip, Strategy::Greedy, 2);
        let c16 = compile(&net, &chip, Strategy::Greedy, 16);
        let r2 = sim.run(c2.programs(), 2).unwrap();
        let r16 = sim.run(c16.programs(), 16).unwrap();
        assert!(
            r16.throughput_ips() > 1.3 * r2.throughput_ips(),
            "batch 16 ({:.0} ips) should clearly beat batch 2 ({:.0} ips)",
            r16.throughput_ips(),
            r2.throughput_ips()
        );
    }

    #[test]
    fn dram_replay_reports_energy() {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&zoo::tiny_cnn(), &chip, Strategy::Greedy, 1);
        let with = ChipSimulator::new(chip.clone()).run(compiled.programs(), 1).unwrap();
        assert!(with.dram_energy.is_some());
        assert!(with.dram_energy.unwrap().total_nj() > 0.0);
        assert!(with.dram_trace.total_bytes() > 0);
        let without = ChipSimulator::new(chip)
            .with_dram_replay(false)
            .run(compiled.programs(), 1)
            .unwrap();
        assert!(without.dram_energy.is_none());
        // Timing is identical either way (replay refines energy only).
        assert!((with.makespan_ns - without.makespan_ns).abs() < 1e-9);
    }

    #[test]
    fn core_activity_is_consistent() {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&zoo::resnet18(), &chip, Strategy::Greedy, 4);
        let report = ChipSimulator::new(chip.clone())
            .with_dram_replay(false)
            .run(compiled.programs(), 4)
            .unwrap();
        let mut any_mvm = false;
        for p in &report.partitions {
            assert_eq!(p.core_activity.len(), chip.cores);
            let span = p.latency_ns();
            for a in &p.core_activity {
                assert!(a.busy_ns() >= 0.0);
                // A core can never be busy longer than the partition ran.
                assert!(
                    a.busy_ns() <= span + 1e-6,
                    "busy {} exceeds span {span}",
                    a.busy_ns()
                );
                assert!(a.utilization(span) <= 1.0);
                any_mvm |= a.mvm_ns > 0.0;
            }
            assert!(p.mean_utilization() > 0.0, "some core must have worked");
        }
        assert!(any_mvm, "MVM busy time must be recorded somewhere");
    }

    #[test]
    fn deadlock_detected_on_malformed_schedule() {
        use pim_isa::{CoreProgram, Instruction as I};
        let chip = ChipSpec::chip_s();
        let mut program = ChipProgram::new(chip.cores);
        // A recv with no matching send anywhere.
        let stream: &mut CoreProgram = program.core_mut(CoreId(0));
        stream.push(I::Recv { from: CoreId(1), bytes: 64, tag: Tag(999) });
        let err = ChipSimulator::new(chip).run(&[program], 1).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn simulated_and_estimated_latencies_agree_loosely() {
        // The analytical estimator and the simulator model the same
        // machine at different fidelities; they should agree within a
        // small factor on a simple workload.
        let chip = ChipSpec::chip_s();
        let net = zoo::tiny_cnn();
        let compiled = compile(&net, &chip, Strategy::Greedy, 4);
        let sim = ChipSimulator::new(chip).with_dram_replay(false);
        let report = sim.run(compiled.programs(), 4).unwrap();
        let est = compiled.estimate().batch_latency_ns;
        let ratio = report.makespan_ns / est;
        assert!(
            (0.2..5.0).contains(&ratio),
            "sim {} vs estimate {} (ratio {ratio})",
            report.makespan_ns,
            est
        );
    }

    #[test]
    fn send_recv_pipeline_overlaps_stages() {
        // A two-stage pipeline simulated with chunked handoff should
        // finish faster than the serial sum of its stages.
        use pim_isa::{Instruction as I, VectorOpKind};
        let chip = ChipSpec::chip_s();
        let mut program = ChipProgram::new(chip.cores);
        let chunks = 8u64;
        for c in 0..chunks {
            program.core_mut(CoreId(0)).push(I::Mvmul {
                waves: 10,
                activations: 10,
                node: 0,
            });
            program.core_mut(CoreId(0)).push(I::Send {
                to: CoreId(1),
                bytes: 64,
                tag: Tag(c),
            });
            program.core_mut(CoreId(1)).push(I::Recv {
                from: CoreId(0),
                bytes: 64,
                tag: Tag(c),
            });
            program.core_mut(CoreId(1)).push(I::Mvmul {
                waves: 10,
                activations: 10,
                node: 1,
            });
            program.core_mut(CoreId(1)).push(I::VectorOp {
                op: VectorOpKind::Relu,
                elements: 12,
            });
        }
        let report = ChipSimulator::new(chip.clone())
            .with_dram_replay(false)
            .run(&[program], 1)
            .unwrap();
        let serial = 2.0 * chunks as f64 * 10.0 * chip.crossbar.mvm_latency_ns;
        assert!(
            report.makespan_ns < serial,
            "pipelined {} should beat serial {}",
            report.makespan_ns,
            serial
        );
    }
}
