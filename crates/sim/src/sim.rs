//! The discrete-event chip simulator (single-chip front end).

use crate::error::SimError;
use crate::report::SimReport;
use crate::system::{ChipLoad, SystemSimulator};
use pim_arch::{ChipSpec, ScheduleMode, TimingMode, Topology};
use pim_isa::ChipProgram;

/// Event-driven simulator for one chip, built on the shared
/// [`pim_engine`] discrete-event core.
///
/// Since the multi-chip generalization this is a thin wrapper over
/// [`SystemSimulator`] with a [`Topology::single`] system; the public
/// API and the analytic-mode report bytes (pinned by the golden
/// fixtures in `tests/golden/`) are unchanged.
///
/// Every hardware resource is an engine component: per-core
/// sequencers, one global-memory channel (bandwidth + first-access
/// latency per block transfer), one arbitrated bus for core-to-core
/// sends, the SEND/RECV rendezvous, and the in-line LPDDR3 controller.
/// `SEND` is buffered (the sender proceeds after arbitration); `RECV`
/// blocks until the matching send has delivered. Partitions are
/// separated by full-chip barriers, and time advances exclusively
/// through the engine's `(time, sequence)`-ordered event queue, so a
/// fixed seed and program give bit-identical reports.
///
/// Same-instant contention for a shared resource resolves in event
/// schedule order (fully deterministic). This can differ from the
/// retired hand-rolled loop, which broke exact time ties by lowest
/// core index; programs without exact `f64` ties — in particular the
/// regression fixture in `tests/engine_determinism.rs` — time out
/// identically under both policies.
///
/// ## Timing modes
///
/// In [`TimingMode::Analytic`] (the default, and the paper's
/// methodology) the memory channel charges a flat first-access latency
/// plus bandwidth streaming, and the in-line LPDDR3 controller refines
/// energy only — reports are byte-identical to the pinned golden
/// fixtures. In [`TimingMode::ClosedLoop`] every channel transfer is
/// striped over a bank of in-line multi-channel controllers and the
/// requesting core blocks until the completion event fires, so bank
/// conflicts, row hits/misses, and channel interleaving shape the
/// critical path; the report then carries per-channel stats.
#[derive(Debug, Clone)]
pub struct ChipSimulator {
    system: SystemSimulator,
}

impl ChipSimulator {
    /// Creates a simulator for `chip` in analytic timing mode with the
    /// in-line DRAM model enabled.
    pub fn new(chip: ChipSpec) -> Self {
        Self { system: SystemSimulator::new(chip, Topology::single()) }
    }

    /// Enables or disables the in-line `pim-dram` model (it refines
    /// DRAM energy but costs simulation time; chip timing is
    /// identical either way). Ignored in closed-loop mode, where the
    /// controllers are always on the critical path.
    pub fn with_dram_replay(mut self, enabled: bool) -> Self {
        self.system = self.system.with_dram_replay(enabled);
        self
    }

    /// Selects the memory-channel timing fidelity.
    pub fn with_timing_mode(mut self, mode: TimingMode) -> Self {
        self.system = self.system.with_timing_mode(mode);
        self
    }

    /// Selects the intra-chip stage dispatch policy (see
    /// [`SystemSimulator::with_schedule_mode`]). The default barrier
    /// mode reproduces the paper's execution and the golden fixtures.
    pub fn with_schedule_mode(mut self, schedule: ScheduleMode) -> Self {
        self.system = self.system.with_schedule_mode(schedule);
        self
    }

    /// Sets the closed-loop DRAM channel count (clamped to at least
    /// one). Without this, the count is derived from the chip's
    /// aggregate memory bandwidth over the per-channel LPDDR3 peak.
    pub fn with_dram_channels(mut self, channels: usize) -> Self {
        self.system = self.system.with_dram_channels(channels);
        self
    }

    /// Sets the closed-loop address-interleave granularity in bytes.
    pub fn with_dram_interleave(mut self, bytes: usize) -> Self {
        self.system = self.system.with_dram_interleave(bytes);
        self
    }

    /// Allows the closed-loop controllers to reorder same-instant
    /// in-flight accesses from independent cores FR-FCFS style (off by
    /// default; see [`SystemSimulator::with_dram_reorder`]).
    pub fn with_dram_reorder(mut self, enabled: bool) -> Self {
        self.system = self.system.with_dram_reorder(enabled);
        self
    }

    /// Pre-sizes the event queue for a known workload (a hint only;
    /// see [`SystemSimulator::with_event_capacity`]). Without it,
    /// [`Self::run`] and [`Self::run_batches`] derive a pre-size from
    /// the programs' peak concurrent cores.
    pub fn with_event_capacity(mut self, events: usize) -> Self {
        self.system = self.system.with_event_capacity(events);
        self
    }

    /// Runs on the engine's retired binary-heap event queue (the
    /// determinism suites' oracle; see
    /// [`SystemSimulator::with_reference_queue`]).
    #[cfg(feature = "reference-queue")]
    pub fn with_reference_queue(mut self, enabled: bool) -> Self {
        self.system = self.system.with_reference_queue(enabled);
        self
    }

    /// The closed-loop channel count in effect: explicit, or derived
    /// from the chip's aggregate bandwidth over one LPDDR3 channel's
    /// peak (the presets' 6.4 GB/s maps to one channel).
    pub fn dram_channel_count(&self) -> usize {
        self.system.dram_channel_count()
    }

    /// Runs one batch cycle: every partition program in order with
    /// barriers in between.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] for malformed schedules and
    /// [`SimError::CoreCountMismatch`] when a program does not match
    /// the chip.
    pub fn run(&self, programs: &[ChipProgram], batch: usize) -> Result<SimReport, SimError> {
        self.system.run(&[ChipLoad::new(programs)], 1, batch)
    }

    /// Runs `rounds` successive batch cycles of the partition
    /// programs. Under [`ScheduleMode::Interleaved`] batch `b+1`'s
    /// head partitions overlap batch `b`'s drain wherever the
    /// partitions' crossbar-group claims permit; in barrier mode this
    /// is `rounds` back-to-back [`Self::run`] cycles on one engine.
    ///
    /// # Errors
    ///
    /// As for [`Self::run`].
    pub fn run_batches(
        &self,
        programs: &[ChipProgram],
        rounds: usize,
        batch: usize,
    ) -> Result<SimReport, SimError> {
        self.system.run(&[ChipLoad::new(programs)], rounds, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compass::{CompileOptions, Compiler, GaParams, Strategy};
    use pim_isa::{CoreId, Tag};
    use pim_model::zoo;

    fn compile(
        net: &pim_model::Network,
        chip: &ChipSpec,
        strategy: Strategy,
        batch: usize,
    ) -> compass::CompiledModel {
        Compiler::new(chip.clone())
            .compile(
                net,
                &CompileOptions::new()
                    .with_strategy(strategy)
                    .with_batch_size(batch)
                    .with_ga(GaParams::fast())
                    .with_seed(3),
            )
            .expect("compilation succeeds")
    }

    #[test]
    fn simulates_compiled_tiny_cnn() {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&zoo::tiny_cnn(), &chip, Strategy::Greedy, 2);
        let report = ChipSimulator::new(chip).run(compiled.programs(), 2).unwrap();
        assert!(report.makespan_ns > 0.0);
        assert_eq!(report.partitions.len(), compiled.partitions().len());
        for p in &report.partitions {
            assert!(p.latency_ns() > 0.0);
            assert!(p.replace_ns >= 0.0);
            assert!(p.replace_ns <= p.latency_ns() + 1e-9);
        }
    }

    #[test]
    fn partitions_execute_back_to_back() {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&zoo::resnet18(), &chip, Strategy::Layerwise, 2);
        let report = ChipSimulator::new(chip).run(compiled.programs(), 2).unwrap();
        for pair in report.partitions.windows(2) {
            assert!((pair[1].start_ns - pair[0].end_ns).abs() < 1e-6, "barrier between partitions");
        }
        let last = report.partitions.last().unwrap();
        assert!((last.end_ns - report.makespan_ns).abs() < 1e-6);
    }

    #[test]
    fn larger_batch_amortizes_replacement() {
        let chip = ChipSpec::chip_s();
        let net = zoo::resnet18();
        let sim = ChipSimulator::new(chip.clone()).with_dram_replay(false);
        let c2 = compile(&net, &chip, Strategy::Greedy, 2);
        let c16 = compile(&net, &chip, Strategy::Greedy, 16);
        let r2 = sim.run(c2.programs(), 2).unwrap();
        let r16 = sim.run(c16.programs(), 16).unwrap();
        assert!(
            r16.throughput_ips() > 1.3 * r2.throughput_ips(),
            "batch 16 ({:.0} ips) should clearly beat batch 2 ({:.0} ips)",
            r16.throughput_ips(),
            r2.throughput_ips()
        );
    }

    #[test]
    fn dram_replay_reports_energy() {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&zoo::tiny_cnn(), &chip, Strategy::Greedy, 1);
        let with = ChipSimulator::new(chip.clone()).run(compiled.programs(), 1).unwrap();
        assert!(with.dram_energy.is_some());
        assert!(with.dram_energy.unwrap().total_nj() > 0.0);
        assert!(with.dram_trace.total_bytes() > 0);
        let without =
            ChipSimulator::new(chip).with_dram_replay(false).run(compiled.programs(), 1).unwrap();
        assert!(without.dram_energy.is_none());
        // Timing is identical either way (replay refines energy only).
        assert!((with.makespan_ns - without.makespan_ns).abs() < 1e-9);
    }

    #[test]
    fn core_activity_is_consistent() {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&zoo::resnet18(), &chip, Strategy::Greedy, 4);
        let report = ChipSimulator::new(chip.clone())
            .with_dram_replay(false)
            .run(compiled.programs(), 4)
            .unwrap();
        let mut any_mvm = false;
        for p in &report.partitions {
            assert_eq!(p.core_activity.len(), chip.cores);
            let span = p.latency_ns();
            for a in &p.core_activity {
                assert!(a.busy_ns() >= 0.0);
                // A core can never be busy longer than the partition ran.
                assert!(a.busy_ns() <= span + 1e-6, "busy {} exceeds span {span}", a.busy_ns());
                assert!(a.utilization(span) <= 1.0);
                any_mvm |= a.mvm_ns > 0.0;
            }
            assert!(p.mean_utilization() > 0.0, "some core must have worked");
        }
        assert!(any_mvm, "MVM busy time must be recorded somewhere");
    }

    #[test]
    fn one_send_wakes_every_receiver_of_the_tag() {
        // Broadcast-style schedule: two cores block on the same tag
        // before the producer's send reaches the bus. Both must wake.
        use pim_isa::Instruction as I;
        let chip = ChipSpec::chip_s();
        let mut program = ChipProgram::new(chip.cores);
        program.core_mut(CoreId(0)).push(I::Send { to: CoreId(1), bytes: 64, tag: Tag(7) });
        program.core_mut(CoreId(1)).push(I::Recv { from: CoreId(0), bytes: 64, tag: Tag(7) });
        program.core_mut(CoreId(2)).push(I::Recv { from: CoreId(0), bytes: 64, tag: Tag(7) });
        let report = ChipSimulator::new(chip.clone())
            .with_dram_replay(false)
            .run(&[program], 1)
            .expect("broadcast recv must not deadlock");
        let activity = &report.partitions[0].core_activity;
        // Both receivers stalled until the same delivery instant.
        assert!(activity[1].recv_wait_ns > 0.0);
        assert_eq!(activity[1].recv_wait_ns, activity[2].recv_wait_ns);
    }

    #[test]
    fn closed_loop_reports_per_channel_stats() {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&zoo::tiny_cnn(), &chip, Strategy::Greedy, 2);
        let report = ChipSimulator::new(chip)
            .with_timing_mode(TimingMode::ClosedLoop)
            .with_dram_channels(2)
            .run(compiled.programs(), 2)
            .unwrap();
        assert!(report.makespan_ns > 0.0);
        let channels = report.dram_channels.as_ref().expect("closed loop reports channel stats");
        assert_eq!(channels.len(), 2);
        let total: u64 = channels.iter().map(|c| c.total_bytes()).sum();
        assert_eq!(total as usize, report.dram_trace.total_bytes());
        assert!(report.dram_energy.is_some());
        assert!(channels.iter().any(|c| c.requests > 0));
        for c in channels {
            assert!(c.utilization() <= 1.0);
            assert!(c.busy_ns <= c.makespan_ns + 1e-9);
        }
    }

    #[test]
    fn analytic_mode_reports_no_channel_stats() {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&zoo::tiny_cnn(), &chip, Strategy::Greedy, 1);
        let report = ChipSimulator::new(chip).run(compiled.programs(), 1).unwrap();
        assert!(report.dram_channels.is_none());
    }

    #[test]
    fn closed_loop_extra_channels_never_slow_the_chip() {
        // Four cores each streaming 2 MiB of weights: striping over
        // four channels must beat a single channel.
        use pim_isa::Instruction as I;
        let chip = ChipSpec::chip_s();
        let mut program = ChipProgram::new(chip.cores);
        for c in 0..4 {
            program.core_mut(CoreId(c)).push(I::LoadWeight { bytes: 2 << 20 });
        }
        let run = |ch: usize| {
            ChipSimulator::new(chip.clone())
                .with_timing_mode(TimingMode::ClosedLoop)
                .with_dram_channels(ch)
                .run(std::slice::from_ref(&program), 1)
                .unwrap()
                .makespan_ns
        };
        let one = run(1);
        let four = run(4);
        assert!(four < one, "4 channels ({four} ns) must beat 1 channel ({one} ns)");
    }

    #[test]
    fn fr_fcfs_reorder_is_deterministic_and_conserves_bytes() {
        // Same-instant accesses from independent cores may reorder
        // under the flag, but the outcome is bit-stable run to run and
        // no byte is lost.
        use pim_isa::Instruction as I;
        let chip = ChipSpec::chip_s();
        let mut program = ChipProgram::new(chip.cores);
        for c in 0..8 {
            program.core_mut(CoreId(c)).push(I::LoadData { bytes: 96 * 1024 });
            program.core_mut(CoreId(c)).push(I::StoreData { bytes: 32 * 1024 });
        }
        let run = |reorder: bool| {
            ChipSimulator::new(chip.clone())
                .with_timing_mode(TimingMode::ClosedLoop)
                .with_dram_channels(2)
                .with_dram_reorder(reorder)
                .run(std::slice::from_ref(&program), 1)
                .unwrap()
        };
        let a = run(true);
        let b = run(true);
        assert_eq!(a, b, "FR-FCFS reordering must stay deterministic");
        let total: u64 = a.dram_channels.as_ref().unwrap().iter().map(|c| c.total_bytes()).sum();
        assert_eq!(total as usize, 8 * (96 + 32) * 1024, "every byte served exactly once");
        // The default path still serves at arrival order and may
        // differ in timing, but moves the same traffic.
        let fifo = run(false);
        assert_eq!(fifo.dram_trace, a.dram_trace);
    }

    #[test]
    fn deadlock_detected_on_malformed_schedule() {
        use pim_isa::{CoreProgram, Instruction as I};
        let chip = ChipSpec::chip_s();
        let mut program = ChipProgram::new(chip.cores);
        // A recv with no matching send anywhere.
        let stream: &mut CoreProgram = program.core_mut(CoreId(0));
        stream.push(I::Recv { from: CoreId(1), bytes: 64, tag: Tag(999) });
        let err = ChipSimulator::new(chip).run(&[program], 1).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn simulated_and_estimated_latencies_agree_loosely() {
        // The analytical estimator and the simulator model the same
        // machine at different fidelities; they should agree within a
        // small factor on a simple workload.
        let chip = ChipSpec::chip_s();
        let net = zoo::tiny_cnn();
        let compiled = compile(&net, &chip, Strategy::Greedy, 4);
        let sim = ChipSimulator::new(chip).with_dram_replay(false);
        let report = sim.run(compiled.programs(), 4).unwrap();
        let est = compiled.estimate().batch_latency_ns;
        let ratio = report.makespan_ns / est;
        assert!(
            (0.2..5.0).contains(&ratio),
            "sim {} vs estimate {} (ratio {ratio})",
            report.makespan_ns,
            est
        );
    }

    #[test]
    fn send_recv_pipeline_overlaps_stages() {
        // A two-stage pipeline simulated with chunked handoff should
        // finish faster than the serial sum of its stages.
        use pim_isa::{Instruction as I, VectorOpKind};
        let chip = ChipSpec::chip_s();
        let mut program = ChipProgram::new(chip.cores);
        let chunks = 8u64;
        for c in 0..chunks {
            program.core_mut(CoreId(0)).push(I::Mvmul { waves: 10, activations: 10, node: 0 });
            program.core_mut(CoreId(0)).push(I::Send { to: CoreId(1), bytes: 64, tag: Tag(c) });
            program.core_mut(CoreId(1)).push(I::Recv { from: CoreId(0), bytes: 64, tag: Tag(c) });
            program.core_mut(CoreId(1)).push(I::Mvmul { waves: 10, activations: 10, node: 1 });
            program.core_mut(CoreId(1)).push(I::VectorOp { op: VectorOpKind::Relu, elements: 12 });
        }
        let report =
            ChipSimulator::new(chip.clone()).with_dram_replay(false).run(&[program], 1).unwrap();
        let serial = 2.0 * chunks as f64 * 10.0 * chip.crossbar.mvm_latency_ns;
        assert!(
            report.makespan_ns < serial,
            "pipelined {} should beat serial {}",
            report.makespan_ns,
            serial
        );
    }
}
