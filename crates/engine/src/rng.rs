//! The engine's seeded random number generator.
//!
//! Every source of randomness in a simulation must flow from the
//! engine's seed, or determinism (same seed, same program, byte-equal
//! results) silently breaks the moment a component reaches for an
//! ambient RNG. The generator is xoshiro256** seeded via splitmix64.

/// A deterministic, seedable RNG owned by the engine.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert!((0..8).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn unit_interval() {
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
