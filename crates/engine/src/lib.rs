//! # pim-engine — deterministic discrete-event simulation core
//!
//! The shared substrate under `pim-sim` (the chip simulator) and
//! `pim-dram` (the LPDDR3 timing model). Both used to advance time
//! with hand-rolled loops and raw `f64` bookkeeping; this crate
//! factors the common machinery into one place:
//!
//! * [`SimTime`] — a finite, non-negative, totally ordered timestamp
//!   newtype (no NaN can enter the event queue),
//! * [`EventQueue`] — a binary heap ordered by `(time, sequence id)`,
//!   so same-time events process in schedule order and every run is
//!   bit-reproducible,
//! * [`Engine`] — the clock + queue + a registry of [`Component`]s
//!   that react to events and schedule new ones,
//! * [`SimRng`] — a seeded xoshiro256** generator, the sole sanctioned
//!   randomness source inside a simulation.
//!
//! # Example
//!
//! ```
//! use pim_engine::{Component, Engine, EngineCtx, Event, SimTime};
//!
//! /// A component that echoes each event 1 ns later, up to 3 times.
//! struct Echo {
//!     heard: u32,
//! }
//!
//! impl Component<&'static str> for Echo {
//!     fn on_event(
//!         &mut self,
//!         event: Event<&'static str>,
//!         ctx: &mut EngineCtx<'_, &'static str>,
//!     ) {
//!         self.heard += 1;
//!         if self.heard < 3 {
//!             ctx.schedule_in(1.0, event.target, event.payload);
//!         }
//!     }
//!     fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
//!         self
//!     }
//! }
//!
//! let mut engine = Engine::new(42);
//! let echo = engine.add_component(Echo { heard: 0 });
//! engine.schedule(SimTime::ZERO, echo, "hello");
//! engine.run_until_idle();
//! assert_eq!(engine.now(), SimTime::from_ns(2.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod graph;
mod queue;
mod rng;
#[cfg(feature = "sharded")]
mod shard;
mod time;
mod traffic;

pub use engine::{Component, Engine, EngineCtx, RemoteEvent};
pub use graph::{ClaimKind, TaskGraph};
pub use queue::{Event, EventQueue};
pub use rng::SimRng;
#[cfg(feature = "sharded")]
pub use shard::{run_sharded, Boundary, ShardSession};
pub use time::SimTime;
pub use traffic::{ArrivalGen, TrafficModel};

/// The address of a registered [`Component`] within an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub usize);

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "component#{}", self.0)
    }
}
