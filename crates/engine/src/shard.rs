//! Conservative-lookahead parallel simulation: one engine per shard,
//! per-shard windows bounded by dynamic per-destination horizons.
//!
//! The classic CMB (Chandy–Misra–Bryant) null-message discipline,
//! specialized to a hub-and-spoke partitioning: every cross-shard
//! event passes through one *boundary* process (for PIM systems, the
//! interconnect — see `pim-sim`). PR 6 shipped this with a single
//! *global* window — every shard advanced in lockstep to
//! `t_min + min_link_latency`, which forced a full rendezvous per
//! minimum link latency and made sharding lose wall-clock on real
//! workloads. This revision replaces the global window with two
//! mechanisms:
//!
//! 1. **Dynamic per-destination lookahead** — at each rendezvous the
//!    boundary computes, per shard, the earliest instant a
//!    *not-yet-released* message could still arrive there
//!    ([`Boundary::horizons`]), from the tails of its in-flight
//!    transfers and from every other shard's frontier propagated
//!    through the cross-shard routing graph. A shard with no possible
//!    inbound traffic gets an unbounded horizon and runs to
//!    completion in a single window; quiet links no longer throttle
//!    the whole system.
//! 2. **Lazy release / batched advancement** — the coordinator only
//!    commands shards that can actually advance (their frontier lies
//!    below their horizon, or they have deliverable inbox entries).
//!    Everyone else stays parked on its channel with zero traffic, so
//!    the per-window channel round-trips that dominated the old
//!    protocol collapse to one rendezvous per cross-shard event tail.
//!
//! Per rendezvous the coordinator (the calling thread) runs:
//!
//! 1. **Collect** — receive the frontier + window exports of every
//!    shard commanded last round, handing exports to the boundary in
//!    shard-id order ([`Boundary::absorb`]).
//! 2. **Advance** — the boundary processes its internal work that is
//!    now unreachable by any future export ([`Boundary::advance`]).
//! 3. **Release + command** — compute per-shard horizons, deliver
//!    each advanceable shard its inbox ([`Boundary::release`]) and a
//!    new window; leave the rest parked.
//!
//! The horizon computation is where correctness lives: influence
//! propagates *transitively* (shard A's export can wake shard B,
//! whose response wakes C — or A itself), so a boundary's horizon for
//! shard `d` must be the shortest-path closure of frontiers over the
//! cross-shard sender graph, not a single-edge bound. Boundaries must
//! also guarantee strictly positive per-edge bounds; that is what
//! makes the fixpoint well-defined and guarantees the shard with the
//! globally earliest effective frontier is always commandable, so
//! the protocol never stalls.
//!
//! Rendezvous is a plain channel pair per shard; shards block between
//! windows and the command schedule is a pure function of simulation
//! state, so every simulation result is independent of thread timing.

use crate::engine::RemoteEvent;
use crate::time::SimTime;
use std::sync::mpsc;

/// The stationary process every cross-shard event passes through —
/// the hub of the partitioned simulation (for PIM systems, the
/// interconnect). Driven by [`run_sharded`]'s coordinator between
/// shard windows; never runs concurrently with itself.
///
/// `frontiers[s]` is always shard `s`'s earliest pending *local*
/// instant (`None` when its event queue is empty); the boundary is
/// responsible for folding its own undelivered traffic into any
/// effective-frontier computation.
pub trait Boundary<E> {
    /// The timestamp of the boundary's earliest undelivered work, if
    /// any — in-flight transfers *and* finalized-but-unreleased
    /// arrivals. The coordinator asserts this is `None` before
    /// finishing, so a boundary that under-reports here turns silent
    /// event loss into a loud panic.
    fn next_time(&self) -> Option<SimTime>;

    /// Processes boundary-internal work (e.g. advancing in-flight
    /// transfers hop by hop) that can no longer be preceded by any
    /// future shard export. Called once per rendezvous while every
    /// shard is parked.
    fn advance(&mut self, frontiers: &[Option<SimTime>]);

    /// Per-shard horizons: `horizons[d]` is the earliest instant a
    /// message **not yet released** to shard `d` could arrive there —
    /// from in-flight transfer tails and from other shards' frontiers
    /// propagated transitively through the sender graph (including
    /// feedback through `d` itself). `None` means nothing can ever
    /// arrive: the shard may run to completion unbounded. Already
    /// finalized arrivals are *excluded* (they are deliverable via
    /// [`Boundary::release`]), but must still wake their destination
    /// as senders in the transitive closure.
    fn horizons(&self, frontiers: &[Option<SimTime>]) -> Vec<Option<SimTime>>;

    /// Releases the finalized messages for `shard` that fire strictly
    /// before `horizon` (all of them when `horizon` is `None`), in
    /// deterministic delivery order.
    fn release(&mut self, shard: usize, horizon: Option<SimTime>) -> Vec<RemoteEvent<E>>;

    /// Absorbs the exports `shard` captured during the window just
    /// completed, in that shard's `(time, seq)` pop order. Called in
    /// ascending shard-id order at each rendezvous — the only
    /// cross-shard order the boundary ever sees.
    fn absorb(&mut self, shard: usize, exports: Vec<RemoteEvent<E>>);
}

/// What a shard worker reports at each rendezvous: its next pending
/// instant (`None` when idle) and the cross-shard events it captured
/// during the window just completed.
struct ShardReady<E> {
    next: Option<SimTime>,
    exports: Vec<RemoteEvent<E>>,
}

/// What the coordinator tells a shard worker at each rendezvous.
enum ShardCommand<E> {
    /// Inject `inbox` and advance to `horizon` (to completion when
    /// `None` — nothing can ever arrive from outside again).
    Window { horizon: Option<SimTime>, inbox: Vec<RemoteEvent<E>> },
    /// The simulation is globally idle; wind down.
    Finish,
}

/// A shard worker's end of the window protocol. The worker closure
/// builds its engine, calls [`ShardSession::drive`], and extracts its
/// results once `drive` returns.
pub struct ShardSession<E> {
    commands: mpsc::Receiver<ShardCommand<E>>,
    replies: mpsc::Sender<ShardReady<E>>,
}

impl<E: 'static> ShardSession<E> {
    /// Runs `engine` window-by-window until the coordinator signals
    /// global idleness. The engine must have export capture enabled
    /// ([`Engine::enable_exports`]) so cross-shard events are mailed
    /// out instead of panicking. Between windows the worker blocks on
    /// its command channel — an uncommanded shard costs nothing.
    pub fn drive(self, engine: &mut crate::Engine<E>) {
        loop {
            let ready =
                ShardReady { next: engine.peek_next_time(), exports: engine.take_exports() };
            if self.replies.send(ready).is_err() {
                return;
            }
            match self.commands.recv() {
                Ok(ShardCommand::Window { horizon, inbox }) => {
                    for message in inbox {
                        engine.schedule(message.time, message.target, message.payload);
                    }
                    match horizon {
                        Some(horizon) => {
                            engine.run_until(horizon);
                        }
                        None => {
                            engine.run_until_idle();
                        }
                    }
                }
                Ok(ShardCommand::Finish) | Err(_) => return,
            }
        }
    }
}

/// Runs `shards` as parallel event loops synchronized through
/// `boundary`, returning each shard closure's result in shard order.
///
/// Each closure receives a [`ShardSession`] and is expected to build
/// its engine, [`ShardSession::drive`] it, and return whatever final
/// state the caller needs (the closure runs on its own
/// `std::thread`, so the result must be `Send`). The boundary owns
/// all lookahead knowledge — per-destination horizons are its
/// business ([`Boundary::horizons`]); the coordinator only routes
/// messages and enforces the protocol's liveness invariant.
///
/// # Panics
///
/// Panics if a shard worker panics (the panic is propagated), or if
/// the boundary violates its contract: no shard can advance while
/// events are still pending somewhere (a broken lookahead would
/// otherwise silently drop events or deadlock).
pub fn run_sharded<E, B, R, F>(shards: Vec<F>, boundary: &mut B) -> Vec<R>
where
    E: Send + 'static,
    B: Boundary<E> + ?Sized,
    R: Send,
    F: FnOnce(ShardSession<E>) -> R + Send,
{
    let n = shards.len();
    std::thread::scope(|scope| {
        let mut commands = Vec::with_capacity(n);
        let mut replies = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for shard in shards {
            let (command_tx, command_rx) = mpsc::channel();
            let (reply_tx, reply_rx) = mpsc::channel();
            commands.push(command_tx);
            replies.push(reply_rx);
            let session = ShardSession { commands: command_rx, replies: reply_tx };
            workers.push(scope.spawn(move || shard(session)));
        }
        // Every worker mails an initial ready before its first recv.
        let mut awaiting = vec![true; n];
        let mut frontier: Vec<Option<SimTime>> = vec![None; n];
        loop {
            // Collect: frontiers + exports of every shard commanded
            // last round, in shard order (parked shards keep their
            // previous frontier — they have not run, so it is still
            // exact).
            for shard in 0..n {
                if !awaiting[shard] {
                    continue;
                }
                let ready =
                    replies[shard].recv().expect("shard worker disconnected before finishing");
                frontier[shard] = ready.next;
                boundary.absorb(shard, ready.exports);
                awaiting[shard] = false;
            }
            boundary.advance(&frontier);
            let horizons = boundary.horizons(&frontier);
            assert_eq!(horizons.len(), n, "boundary must produce one horizon per shard");
            let mut any = false;
            for shard in 0..n {
                let horizon = horizons[shard];
                let inbox = boundary.release(shard, horizon);
                let advanceable = !inbox.is_empty()
                    || match (frontier[shard], horizon) {
                        (Some(next), Some(horizon)) => next < horizon,
                        (Some(_), None) => true,
                        (None, _) => false,
                    };
                if !advanceable {
                    continue;
                }
                commands[shard]
                    .send(ShardCommand::Window { horizon, inbox })
                    .expect("shard worker disconnected mid-run");
                awaiting[shard] = true;
                any = true;
            }
            if !any {
                // Liveness invariant: when no shard is commandable,
                // the system must be globally drained. A boundary
                // whose horizons stall below a live frontier, or that
                // still holds undelivered work here, has broken the
                // lookahead contract — fail loudly instead of
                // finishing shards early.
                assert!(
                    frontier.iter().all(Option::is_none),
                    "sharded protocol stalled: a shard holds pending events but its horizon \
                     does not admit them"
                );
                assert!(
                    boundary.next_time().is_none(),
                    "sharded protocol stalled: the boundary holds undelivered work at global idle"
                );
                for command in &commands {
                    let _ = command.send(ShardCommand::Finish);
                }
                break;
            }
        }
        workers
            .into_iter()
            .map(|worker| match worker.join() {
                Ok(result) => result,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Component, ComponentId, Engine, EngineCtx, Event};
    use std::cell::Cell;

    /// Two counters on separate shards ping-ponging through a boundary
    /// that adds a fixed latency per crossing — the minimal CMB
    /// system. Shard 0 owns component 0, shard 1 owns component 1.
    struct Counter {
        peer: ComponentId,
        heard: Vec<(f64, u32)>,
    }

    impl Component<u32> for Counter {
        fn on_event(&mut self, event: Event<u32>, ctx: &mut EngineCtx<'_, u32>) {
            self.heard.push((event.time.as_ns(), event.payload));
            if event.payload > 0 {
                // The peer is a padded slot here: export.
                ctx.schedule(event.time, self.peer, event.payload - 1);
            }
        }
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    /// Runs a burst of local self-scheduled work, then ships one
    /// message to its peer — the "long-idle destination" shape.
    struct LateShipper {
        me: ComponentId,
        peer: ComponentId,
    }

    impl Component<u32> for LateShipper {
        fn on_event(&mut self, event: Event<u32>, ctx: &mut EngineCtx<'_, u32>) {
            if event.payload > 0 {
                ctx.schedule(event.time.advance(100.0), self.me, event.payload - 1);
            } else {
                // Ship 0 so the receiving Counter records without
                // answering — one-way late traffic.
                ctx.schedule(event.time, self.peer, 0);
            }
        }
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    /// Forwards exports to their target `latency` later, restricted to
    /// a declared sender graph — the toy analogue of `pim-sim`'s
    /// interconnect boundary, including the transitive
    /// effective-frontier closure that [`Boundary::horizons`] demands.
    struct Relay {
        latency: f64,
        /// Declared `(src_shard, dst_shard)` sender pairs.
        edges: Vec<(usize, usize)>,
        /// Finalized messages (latency already applied).
        pending: Vec<RemoteEvent<u32>>,
        owner_of: Vec<usize>,
        shards: usize,
        /// Coordinator rendezvous count (horizons is called once per
        /// round), for asserting lazy pacing.
        rounds: Cell<usize>,
    }

    impl Relay {
        /// Effective frontiers: each shard's local frontier or
        /// earliest undelivered inbound message, closed transitively
        /// over the sender graph (a woken shard forwards influence).
        fn effective(&self, frontiers: &[Option<SimTime>]) -> Vec<Option<SimTime>> {
            let mut eff: Vec<Option<SimTime>> = (0..self.shards)
                .map(|s| {
                    let inbound = self
                        .pending
                        .iter()
                        .filter(|m| self.owner_of[m.target.0] == s)
                        .map(|m| m.time)
                        .min();
                    [frontiers[s], inbound].into_iter().flatten().min()
                })
                .collect();
            // Bellman-Ford over positive edge weights: tiny graphs,
            // exact fixpoint.
            loop {
                let mut changed = false;
                for &(src, dst) in &self.edges {
                    if let Some(src_eff) = eff[src] {
                        let via = src_eff.advance(self.latency);
                        if eff[dst].is_none_or_later(via) {
                            eff[dst] = Some(via);
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            eff
        }
    }

    trait IsNoneOrLater {
        fn is_none_or_later(&self, candidate: SimTime) -> bool;
    }

    impl IsNoneOrLater for Option<SimTime> {
        fn is_none_or_later(&self, candidate: SimTime) -> bool {
            match self {
                Some(current) => candidate < *current,
                None => true,
            }
        }
    }

    impl Boundary<u32> for Relay {
        fn next_time(&self) -> Option<SimTime> {
            self.pending.iter().map(|m| m.time).min()
        }
        fn advance(&mut self, _frontiers: &[Option<SimTime>]) {}
        fn horizons(&self, frontiers: &[Option<SimTime>]) -> Vec<Option<SimTime>> {
            self.rounds.set(self.rounds.get() + 1);
            let eff = self.effective(frontiers);
            (0..self.shards)
                .map(|dst| {
                    self.edges
                        .iter()
                        .filter(|&&(_, d)| d == dst)
                        .filter_map(|&(src, _)| eff[src].map(|t| t.advance(self.latency)))
                        .min()
                })
                .collect()
        }
        fn release(&mut self, shard: usize, horizon: Option<SimTime>) -> Vec<RemoteEvent<u32>> {
            let mut out = Vec::new();
            let mut keep = Vec::new();
            for message in std::mem::take(&mut self.pending) {
                let deliverable = self.owner_of[message.target.0] == shard
                    && match horizon {
                        Some(horizon) => message.time < horizon,
                        None => true,
                    };
                if deliverable {
                    out.push(message);
                } else {
                    keep.push(message);
                }
            }
            self.pending = keep;
            out
        }
        fn absorb(&mut self, _shard: usize, exports: Vec<RemoteEvent<u32>>) {
            for message in exports {
                self.pending.push(RemoteEvent {
                    time: message.time.advance(self.latency),
                    target: message.target,
                    payload: message.payload,
                });
            }
        }
    }

    #[test]
    fn two_shards_ping_pong_deterministically() {
        let run = || -> Vec<Vec<(f64, u32)>> {
            let shards: Vec<_> = (0..2usize)
                .map(|me| {
                    move |session: ShardSession<u32>| {
                        let mut engine: Engine<u32> = Engine::new(0);
                        engine.enable_exports();
                        // Global layout: component 0 then component 1.
                        let mine = ComponentId(me);
                        let peer = ComponentId(1 - me);
                        if me == 0 {
                            engine.add_component(Counter { peer, heard: Vec::new() });
                            engine.pad_components(1);
                            engine.schedule(SimTime::ZERO, mine, 4);
                        } else {
                            engine.pad_components(1);
                            engine.add_component(Counter { peer, heard: Vec::new() });
                        }
                        session.drive(&mut engine);
                        engine.extract::<Counter>(mine).expect("counter").heard
                    }
                })
                .collect();
            let mut relay = Relay {
                latency: 10.0,
                edges: vec![(0, 1), (1, 0)],
                pending: Vec::new(),
                owner_of: vec![0, 1],
                shards: 2,
                rounds: Cell::new(0),
            };
            run_sharded(shards, &mut relay)
        };
        let logs = run();
        assert_eq!(logs[0], vec![(0.0, 4), (20.0, 2), (40.0, 0)]);
        assert_eq!(logs[1], vec![(10.0, 3), (30.0, 1)]);
        assert_eq!(run(), logs, "repeated sharded runs are identical");
    }

    #[test]
    fn a_long_idle_shard_still_receives_late_traffic_lazily() {
        // Shard 1 starts with an empty queue and stays parked while
        // shard 0 burns through 500 ns of local work; the late
        // hand-off must still be delivered (never `Finish`ed early),
        // and the one-way sender graph must let shard 0 run its whole
        // burst in a single unbounded window instead of one
        // rendezvous per 10 ns lookahead.
        let shards: Vec<_> = (0..2usize)
            .map(|me| {
                move |session: ShardSession<u32>| {
                    let mut engine: Engine<u32> = Engine::new(0);
                    engine.enable_exports();
                    let mine = ComponentId(me);
                    let peer = ComponentId(1 - me);
                    if me == 0 {
                        engine.add_component(LateShipper { me: mine, peer });
                        engine.pad_components(1);
                        engine.schedule(SimTime::ZERO, mine, 5);
                        session.drive(&mut engine);
                        Vec::new()
                    } else {
                        engine.pad_components(1);
                        engine.add_component(Counter { peer, heard: Vec::new() });
                        session.drive(&mut engine);
                        engine.extract::<Counter>(mine).expect("counter").heard
                    }
                }
            })
            .collect();
        let mut relay = Relay {
            latency: 10.0,
            edges: vec![(0, 1)],
            pending: Vec::new(),
            owner_of: vec![0, 1],
            shards: 2,
            rounds: Cell::new(0),
        };
        let logs = run_sharded(shards, &mut relay);
        assert_eq!(logs[1], vec![(510.0, 0)], "late cross-shard traffic reaches the idle shard");
        assert!(relay.pending.is_empty(), "everything was delivered");
        assert!(
            relay.rounds.get() <= 4,
            "lazy release must collapse the burst into a few rendezvous, got {}",
            relay.rounds.get()
        );
    }
}
