//! Conservative-lookahead parallel simulation: one engine per shard,
//! windows bounded by the minimum cross-shard latency.
//!
//! The classic CMB (Chandy–Misra–Bryant) null-message discipline,
//! specialized to a hub-and-spoke partitioning: every cross-shard
//! event passes through one *boundary* process (for PIM systems, the
//! interconnect — see `pim-sim`), and every boundary traversal takes
//! at least `lookahead_ns`. That makes the horizon computation global
//! and trivial: if the earliest pending event anywhere in the system
//! is at `t_min`, no shard can receive a *new* inbound message before
//! `t_min + lookahead_ns`, so every shard may safely run to that
//! horizon in parallel.
//!
//! Per window the coordinator (the calling thread) runs three phases:
//!
//! 1. **Release** — the boundary hands each shard the inbound messages
//!    that fire strictly before the horizon ([`Boundary::release`]).
//!    These are always deliverable: they were produced at least one
//!    lookahead earlier, so every shard's clock is still at or before
//!    their timestamps.
//! 2. **Advance** — every shard injects its inbox and runs its own
//!    event loop to the horizon on its own thread
//!    ([`Engine::run_until`]), capturing events addressed to
//!    non-local components as [`RemoteEvent`] exports (in exact
//!    `(time, seq)` pop order).
//! 3. **Absorb** — the boundary takes the fresh exports in
//!    deterministic (shard-id, emission) order and processes its own
//!    work below the horizon ([`Boundary::absorb`]); anything it
//!    produces lands at or beyond the horizon (the lookahead
//!    guarantee), never behind a shard's clock.
//!
//! Rendezvous is a plain channel pair per shard (one send + one
//! receive per window each way); shards block between windows, so the
//! schedule — and therefore every simulation result — is independent
//! of thread timing.

use crate::engine::RemoteEvent;
use crate::time::SimTime;
use std::sync::mpsc;

/// The stationary process every cross-shard event passes through —
/// the hub of the partitioned simulation (for PIM systems, the
/// interconnect). Driven by [`run_sharded`]'s coordinator between
/// shard windows; never runs concurrently with itself.
pub trait Boundary<E> {
    /// The timestamp of the boundary's earliest pending work, if any.
    /// Participates in the global `t_min` that sets each window's
    /// horizon.
    fn next_time(&self) -> Option<SimTime>;

    /// Releases the inbound messages that fire strictly before
    /// `horizon`, grouped by destination shard (the returned vector
    /// has one inbox per shard, in shard-id order).
    fn release(&mut self, horizon: SimTime) -> Vec<Vec<RemoteEvent<E>>>;

    /// Absorbs the exports each shard captured during the window just
    /// completed (`exports[shard]` is in that shard's `(time, seq)`
    /// pop order) and processes all boundary-internal work strictly
    /// below `horizon`. Every message this produces must fire at or
    /// beyond `horizon` — that is the lookahead contract the whole
    /// scheme rests on.
    fn absorb(&mut self, exports: Vec<Vec<RemoteEvent<E>>>, horizon: SimTime);
}

/// What a shard worker reports at each rendezvous: its next pending
/// instant (`None` when idle) and the cross-shard events it captured
/// during the window just completed.
struct ShardReady<E> {
    next: Option<SimTime>,
    exports: Vec<RemoteEvent<E>>,
}

/// What the coordinator tells a shard worker at each rendezvous.
enum ShardCommand<E> {
    /// Inject `inbox` and advance to `horizon`.
    Window { horizon: SimTime, inbox: Vec<RemoteEvent<E>> },
    /// The simulation is globally idle; wind down.
    Finish,
}

/// A shard worker's end of the window protocol. The worker closure
/// builds its engine, calls [`ShardSession::drive`], and extracts its
/// results once `drive` returns.
pub struct ShardSession<E> {
    commands: mpsc::Receiver<ShardCommand<E>>,
    replies: mpsc::Sender<ShardReady<E>>,
}

impl<E: 'static> ShardSession<E> {
    /// Runs `engine` window-by-window until the coordinator signals
    /// global idleness. The engine must have export capture enabled
    /// ([`Engine::enable_exports`]) so cross-shard events are mailed
    /// out instead of panicking.
    pub fn drive(self, engine: &mut crate::Engine<E>) {
        loop {
            let ready =
                ShardReady { next: engine.peek_next_time(), exports: engine.take_exports() };
            if self.replies.send(ready).is_err() {
                return;
            }
            match self.commands.recv() {
                Ok(ShardCommand::Window { horizon, inbox }) => {
                    for message in inbox {
                        engine.schedule(message.time, message.target, message.payload);
                    }
                    engine.run_until(horizon);
                }
                Ok(ShardCommand::Finish) | Err(_) => return,
            }
        }
    }
}

/// Runs `shards` as parallel event loops synchronized through
/// `boundary`, returning each shard closure's result in shard order.
///
/// Each closure receives a [`ShardSession`] and is expected to build
/// its engine, [`ShardSession::drive`] it, and return whatever final
/// state the caller needs (the closure runs on its own
/// `std::thread`, so the result must be `Send`). `lookahead_ns` is
/// the minimum latency of any boundary traversal and must be
/// positive — a zero lookahead admits no safe window.
///
/// # Panics
///
/// Panics if `lookahead_ns` is not strictly positive, or if a shard
/// worker panics (the panic is propagated).
pub fn run_sharded<E, B, R, F>(shards: Vec<F>, boundary: &mut B, lookahead_ns: f64) -> Vec<R>
where
    E: Send + 'static,
    B: Boundary<E> + ?Sized,
    R: Send,
    F: FnOnce(ShardSession<E>) -> R + Send,
{
    assert!(lookahead_ns > 0.0, "conservative lookahead requires a positive link latency");
    let n = shards.len();
    std::thread::scope(|scope| {
        let mut commands = Vec::with_capacity(n);
        let mut replies = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for shard in shards {
            let (command_tx, command_rx) = mpsc::channel();
            let (reply_tx, reply_rx) = mpsc::channel();
            commands.push(command_tx);
            replies.push(reply_rx);
            let session = ShardSession { commands: command_rx, replies: reply_tx };
            workers.push(scope.spawn(move || shard(session)));
        }
        let mut horizon = SimTime::ZERO;
        loop {
            // Rendezvous: every shard's frontier + window exports, in
            // shard order (the only order the boundary ever sees).
            let mut nexts = Vec::with_capacity(n);
            let mut exports = Vec::with_capacity(n);
            for reply in &replies {
                let ready = reply.recv().expect("shard worker disconnected before finishing");
                nexts.push(ready.next);
                exports.push(ready.exports);
            }
            boundary.absorb(exports, horizon);
            let t_min = nexts.iter().flatten().copied().chain(boundary.next_time()).min();
            let Some(t_min) = t_min else {
                for command in &commands {
                    let _ = command.send(ShardCommand::Finish);
                }
                break;
            };
            horizon = t_min.advance(lookahead_ns);
            let mut inboxes = boundary.release(horizon);
            assert_eq!(inboxes.len(), n, "boundary must produce one inbox per shard");
            for (command, inbox) in commands.iter().zip(inboxes.drain(..)) {
                command
                    .send(ShardCommand::Window { horizon, inbox })
                    .expect("shard worker disconnected mid-run");
            }
        }
        workers
            .into_iter()
            .map(|worker| match worker.join() {
                Ok(result) => result,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Component, ComponentId, Engine, EngineCtx, Event};

    /// Two counters on separate shards ping-ponging through a boundary
    /// that adds a fixed latency per crossing — the minimal CMB
    /// system. Shard 0 owns component 0, shard 1 owns component 1.
    struct Counter {
        peer: ComponentId,
        heard: Vec<(f64, u32)>,
    }

    impl Component<u32> for Counter {
        fn on_event(&mut self, event: Event<u32>, ctx: &mut EngineCtx<'_, u32>) {
            self.heard.push((event.time.as_ns(), event.payload));
            if event.payload > 0 {
                // The peer is a padded slot here: export.
                ctx.schedule(event.time, self.peer, event.payload - 1);
            }
        }
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    /// Forwards every export to its target `latency` later.
    struct Relay {
        latency: f64,
        pending: Vec<RemoteEvent<u32>>,
        owner_of: Vec<usize>,
    }

    impl Boundary<u32> for Relay {
        fn next_time(&self) -> Option<SimTime> {
            self.pending.iter().map(|m| m.time).min()
        }
        fn release(&mut self, horizon: SimTime) -> Vec<Vec<RemoteEvent<u32>>> {
            let mut inboxes: Vec<Vec<RemoteEvent<u32>>> = vec![Vec::new(); 2];
            let mut keep = Vec::new();
            for message in self.pending.drain(..) {
                if message.time < horizon {
                    inboxes[self.owner_of[message.target.0]].push(message);
                } else {
                    keep.push(message);
                }
            }
            self.pending = keep;
            inboxes
        }
        fn absorb(&mut self, exports: Vec<Vec<RemoteEvent<u32>>>, _horizon: SimTime) {
            for shard_exports in exports {
                for message in shard_exports {
                    self.pending.push(RemoteEvent {
                        time: message.time.advance(self.latency),
                        target: message.target,
                        payload: message.payload,
                    });
                }
            }
        }
    }

    #[test]
    fn two_shards_ping_pong_deterministically() {
        let run = || -> Vec<Vec<(f64, u32)>> {
            let shards: Vec<_> = (0..2usize)
                .map(|me| {
                    move |session: ShardSession<u32>| {
                        let mut engine: Engine<u32> = Engine::new(0);
                        engine.enable_exports();
                        // Global layout: component 0 then component 1.
                        let mine = ComponentId(me);
                        let peer = ComponentId(1 - me);
                        if me == 0 {
                            engine.add_component(Counter { peer, heard: Vec::new() });
                            engine.pad_components(1);
                            engine.schedule(SimTime::ZERO, mine, 4);
                        } else {
                            engine.pad_components(1);
                            engine.add_component(Counter { peer, heard: Vec::new() });
                        }
                        session.drive(&mut engine);
                        engine.extract::<Counter>(mine).expect("counter").heard
                    }
                })
                .collect();
            let mut relay = Relay { latency: 10.0, pending: Vec::new(), owner_of: vec![0, 1] };
            run_sharded(shards, &mut relay, 10.0)
        };
        let logs = run();
        assert_eq!(logs[0], vec![(0.0, 4), (20.0, 2), (40.0, 0)]);
        assert_eq!(logs[1], vec![(10.0, 3), (30.0, 1)]);
        assert_eq!(run(), logs, "repeated sharded runs are identical");
    }

    #[test]
    #[should_panic(expected = "positive link latency")]
    fn zero_lookahead_is_rejected() {
        let shards: Vec<fn(ShardSession<u32>)> = Vec::new();
        let mut relay = Relay { latency: 0.0, pending: Vec::new(), owner_of: Vec::new() };
        run_sharded(shards, &mut relay, 0.0);
    }
}
