//! The event queue: a two-tier calendar queue with stable,
//! deterministic ordering.
//!
//! The seed implementation was a `BinaryHeap` popping one event at a
//! time — `O(log n)` sift per operation and a fresh comparison chain
//! for every pop, even though discrete-event simulations overwhelmingly
//! schedule into the *near* future and fire whole bursts at the same
//! instant (barriers, same-cycle wakeups). The queue is now split into
//! two tiers:
//!
//! * a **near-future ring** of FIFO buckets, each covering
//!   [`BUCKET_NS`] of simulated time over a [`BUCKETS`]-wide window
//!   starting at the current drain position — pushes are `O(1)` Vec
//!   appends, and a bucket is sorted once by `(time, seq)` when the
//!   drain reaches it;
//! * a **far-future heap** for events beyond the ring's horizon —
//!   events migrate into the ring (at most once each) as the window
//!   advances over their bucket.
//!
//! Dispatch order is *exactly* the `(time, seq)` order of the old
//! heap: bucketing is monotone in time, each bucket is drained in
//! sorted order, and far events always live in later buckets than
//! anything in the ring. The retired heap survives as
//! [`reference::ReferenceQueue`] (compiled for tests and under the
//! `reference-queue` feature) so equivalence suites can run the same
//! simulation on both queues and byte-compare the reports.
//!
//! Storage is recycled: bucket `Vec`s keep their capacity and
//! circulate through the drain position, the active bucket is sorted
//! *descending* so the earliest event pops off the back in O(1), and
//! [`EventQueue::pop_at`] hands the engine the rest of a same-instant
//! burst — barrier resets, same-cycle wakeups — one O(1) pop at a
//! time with no intermediate buffer ([`EventQueue::pop_batch`] is the
//! buffered equivalent for callers that want the whole burst at
//! once).

use crate::time::SimTime;
use crate::ComponentId;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// An event popped from the queue.
#[derive(Debug, Clone)]
pub struct Event<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Global sequence id (schedule order); the tiebreaker for
    /// same-time events.
    pub seq: u64,
    /// The component the event is addressed to.
    pub target: ComponentId,
    /// The event payload.
    pub payload: E,
}

struct Entry<E>(Event<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // (time, seq): identical times process in schedule order, so
        // runs are bit-reproducible regardless of heap internals.
        self.0.time.cmp(&other.0.time).then(self.0.seq.cmp(&other.0.seq))
    }
}

/// Number of near-future fine buckets (power of two: bucket index
/// maps to a ring slot by masking).
const BUCKETS: usize = 1024;
const MASK: u64 = (BUCKETS - 1) as u64;
const LOG2_BUCKETS: u32 = BUCKETS.trailing_zeros();
/// Fine-ring occupancy bitmap words.
const WORDS: usize = BUCKETS / 64;
/// Width of one fine bucket in nanoseconds. Component latencies in
/// the chip and DRAM simulators are a few to a few hundred ns, so an
/// 8 ns bucket over a 1024-bucket window keeps the bulk of in-flight
/// events in the fine ring.
const BUCKET_NS: f64 = 8.0;
/// Coarse-rung buckets: each spans one whole fine window
/// (`BUCKETS x BUCKET_NS` = 8.2 us), so the ladder covers ~4.2 ms
/// before anything touches the far heap. Measured on the CI sweep
/// workloads, that keeps >99.9% of events off the heap entirely.
const COARSE: usize = 512;
const CMASK: u64 = (COARSE - 1) as u64;
const CWORDS: usize = COARSE / 64;

/// Next set bit in a power-of-two ring bitmap of `N` slots, starting
/// at absolute index `from`. All set bits must correspond to indices
/// in `[from, from + N)` (the ring-window invariant), which makes the
/// slot -> absolute-index mapping unambiguous.
fn next_occupied<const N: usize>(occ: &[u64], from: u64) -> Option<u64> {
    let words = N / 64;
    let s0 = (from as usize) & (N - 1);
    let (w0, b0) = (s0 / 64, s0 % 64);
    let mut word = occ[w0] & (!0u64 << b0);
    let mut wi = w0;
    for step in 0..=words {
        if word != 0 {
            let s = wi * 64 + word.trailing_zeros() as usize;
            let delta = (s + N - s0) as u64 & (N as u64 - 1);
            return Some(from + delta);
        }
        wi = (wi + 1) % words;
        word = occ[wi];
        if step == words - 1 {
            // Wrapped all the way: only bits before the start slot
            // remain unchecked in the first word.
            word = occ[w0] & !(!0u64 << b0);
            wi = w0;
        }
    }
    None
}

/// The two-rung ladder queue proper. See the module docs for the
/// design; the tiers, nearest first:
///
/// 1. `cur` — the fine bucket being drained, sorted descending so the
///    earliest event pops off the back in O(1);
/// 2. `slots` — the fine ring: `BUCKETS` FIFO buckets of `BUCKET_NS`
///    each, covering `[base_bucket, base_bucket + BUCKETS)`;
/// 3. `coarse` — the coarse rung: `COARSE` FIFO buckets, each spanning
///    one whole fine window; a coarse bucket spills into the fine ring
///    in O(1) per event when the window reaches it;
/// 4. `far` — a heap for the residue beyond the ladder (~ms away).
struct CalendarQueue<E> {
    /// Fine ring: slot `bucket & MASK` holds the pending events of
    /// `bucket`, for buckets in `[base_bucket, base_bucket + BUCKETS)`.
    slots: Vec<Vec<Event<E>>>,
    /// One bit per fine slot: slot holds at least one event.
    occupied: [u64; WORDS],
    /// Events currently stored in `slots`.
    near_len: usize,
    /// The fine bucket currently being drained, sorted **descending**
    /// by `(time, seq)` so the earliest event is `Vec::pop`'d off the
    /// back in O(1) with no shifting; empty when no bucket is active.
    cur: Vec<Event<E>>,
    /// The bucket `cur` drains (and the floor for every pending
    /// event): pushes below it take the cold re-anchor path.
    cur_bucket: u64,
    /// Start of the fine window, always aligned to a coarse-bucket
    /// boundary (a multiple of `BUCKETS`), so one coarse bucket spills
    /// exactly onto the fine ring.
    base_bucket: u64,
    /// Coarse rung: slot `(bucket >> LOG2_BUCKETS) & CMASK` holds
    /// events of that coarse bucket, for coarse indices in
    /// `(base_bucket >> LOG2_BUCKETS, (base_bucket >> LOG2_BUCKETS) + COARSE)`.
    coarse: Vec<Vec<Event<E>>>,
    /// One bit per coarse slot.
    coarse_occupied: [u64; CWORDS],
    /// Events currently stored in `coarse`.
    coarse_len: usize,
    /// Events beyond the ladder.
    far: BinaryHeap<Reverse<Entry<E>>>,
    len: usize,
}

impl<E> CalendarQueue<E> {
    fn new() -> Self {
        Self {
            slots: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            near_len: 0,
            cur: Vec::new(),
            cur_bucket: 0,
            base_bucket: 0,
            coarse: (0..COARSE).map(|_| Vec::new()).collect(),
            coarse_occupied: [0; CWORDS],
            coarse_len: 0,
            far: BinaryHeap::new(),
            len: 0,
        }
    }

    #[inline]
    fn bucket_of(time: SimTime) -> u64 {
        // Monotone in `time` (division by a positive constant, then
        // truncation), so earlier buckets strictly precede later ones.
        (time.as_ns() / BUCKET_NS) as u64
    }

    /// Pre-sizes storage for roughly `events` pending events.
    fn reserve(&mut self, events: usize) {
        let per_bucket = (events / BUCKETS).max(4);
        for slot in &mut self.slots {
            if slot.capacity() < per_bucket {
                slot.reserve(per_bucket - slot.len());
            }
        }
        self.cur.reserve(per_bucket.max(64));
    }

    #[inline]
    fn slot_insert(
        slots: &mut [Vec<Event<E>>],
        occupied: &mut [u64; WORDS],
        near_len: &mut usize,
        event: Event<E>,
        bucket: u64,
    ) {
        let s = (bucket & MASK) as usize;
        slots[s].push(event);
        occupied[s / 64] |= 1u64 << (s % 64);
        *near_len += 1;
    }

    /// Cold path: a push below the drain position (the engine never
    /// does this — events cannot fire in the past — but the queue API
    /// permits it). Spill the whole ladder back into the far heap and
    /// re-anchor at the new bucket so ring aliasing stays sound.
    #[cold]
    #[inline(never)]
    fn rewind_to(&mut self, bucket: u64) {
        for e in self.cur.drain(..) {
            self.far.push(Reverse(Entry(e)));
        }
        if self.near_len > 0 {
            for slot in &mut self.slots {
                for e in slot.drain(..) {
                    self.far.push(Reverse(Entry(e)));
                }
            }
            self.occupied = [0; WORDS];
            self.near_len = 0;
        }
        if self.coarse_len > 0 {
            for slot in &mut self.coarse {
                for e in slot.drain(..) {
                    self.far.push(Reverse(Entry(e)));
                }
            }
            self.coarse_occupied = [0; CWORDS];
            self.coarse_len = 0;
        }
        self.base_bucket = (bucket >> LOG2_BUCKETS) << LOG2_BUCKETS;
        self.cur_bucket = bucket;
        // Restore the tier invariant (the far heap never holds a
        // bucket the fine window covers): everything the spill (or an
        // earlier rewind) parked in the heap that the re-anchored
        // window now reaches comes straight back out.
        let horizon = self.base_bucket + BUCKETS as u64;
        while let Some(Reverse(Entry(e))) = self.far.peek() {
            let b = Self::bucket_of(e.time);
            if b >= horizon {
                break;
            }
            let Reverse(Entry(event)) = self.far.pop().expect("peeked");
            Self::slot_insert(&mut self.slots, &mut self.occupied, &mut self.near_len, event, b);
        }
    }

    fn push(&mut self, event: Event<E>) {
        let bucket = Self::bucket_of(event.time);
        self.len += 1;
        if bucket < self.cur_bucket {
            self.rewind_to(bucket);
        }
        let offset = bucket - self.base_bucket;
        if offset < BUCKETS as u64 {
            if bucket == self.cur_bucket {
                let s = (bucket & MASK) as usize;
                let slot_occupied = self.occupied[s / 64] & (1u64 << (s % 64)) != 0;
                // The bucket being drained lives in `cur` (kept sorted
                // descending) unless pre-activation events still sit
                // in its slot. Every pending entry has a smaller
                // sequence id, so the event pops after all entries
                // with `time <= event.time` — and the common case (a
                // same-instant reschedule, at or below everything
                // still pending) is an O(1) append at the pop end.
                if !slot_occupied {
                    if self.cur.last().map(|e| e.time > event.time).unwrap_or(true) {
                        self.cur.push(event);
                    } else {
                        let at = self.cur.partition_point(|e| e.time > event.time);
                        self.cur.insert(at, event);
                    }
                    return;
                }
                debug_assert!(self.cur.is_empty(), "active-bucket events never split cur/slot");
            }
            Self::slot_insert(
                &mut self.slots,
                &mut self.occupied,
                &mut self.near_len,
                event,
                bucket,
            );
            return;
        }
        let coarse = bucket >> LOG2_BUCKETS;
        if coarse - (self.base_bucket >> LOG2_BUCKETS) < COARSE as u64 {
            let c = (coarse & CMASK) as usize;
            self.coarse[c].push(event);
            self.coarse_occupied[c / 64] |= 1u64 << (c % 64);
            self.coarse_len += 1;
            return;
        }
        self.far.push(Reverse(Entry(event)));
    }

    /// Makes `cur` non-empty (sorted events of the earliest pending
    /// bucket) or returns `false` when the queue is empty.
    fn activate_next_bucket(&mut self) -> bool {
        debug_assert!(self.cur.is_empty());
        loop {
            if self.near_len > 0 {
                // Ring-window invariant for the scan: every pending
                // event is at or above the drain position.
                let bucket = next_occupied::<BUCKETS>(&self.occupied, self.cur_bucket)
                    .expect("near_len > 0 guarantees an occupied fine slot");
                // Swap the bucket into `cur` (the drained `cur`
                // allocation takes its place in the slot — capacities
                // circulate, nothing is copied) and sort it
                // descending.
                let s = (bucket & MASK) as usize;
                std::mem::swap(&mut self.cur, &mut self.slots[s]);
                debug_assert!(!self.cur.is_empty());
                self.occupied[s / 64] &= !(1u64 << (s % 64));
                self.near_len -= self.cur.len();
                self.cur_bucket = bucket;
                // Descending sort on a packed (time-bits, seq) key:
                // times are finite and non-negative, so the IEEE bit
                // pattern orders exactly like the value and one u128
                // compare replaces the chained f64/seq comparison.
                self.cur.sort_unstable_by_key(|e| {
                    std::cmp::Reverse(((e.time.as_ns().to_bits() as u128) << 64) | e.seq as u128)
                });
                return true;
            }
            // Fine ring exhausted: refill it from the next coarse
            // bucket and/or the far heap's head coarse bucket, then go
            // around again. Each event climbs down the ladder at most
            // once per tier.
            let rung = (self.coarse_len > 0).then(|| {
                next_occupied::<COARSE>(&self.coarse_occupied, self.base_bucket >> LOG2_BUCKETS)
                    .expect("coarse_len > 0 guarantees an occupied coarse slot")
            });
            let far =
                self.far.peek().map(|Reverse(Entry(e))| Self::bucket_of(e.time) >> LOG2_BUCKETS);
            let next_coarse = match (rung, far) {
                (None, None) => return false,
                (Some(c), None) => c,
                (None, Some(f)) => f,
                (Some(c), Some(f)) => c.min(f),
            };
            self.base_bucket = next_coarse << LOG2_BUCKETS;
            self.cur_bucket = self.base_bucket;
            if rung == Some(next_coarse) {
                let c = (next_coarse & CMASK) as usize;
                let mut spill = std::mem::take(&mut self.coarse[c]);
                self.coarse_occupied[c / 64] &= !(1u64 << (c % 64));
                self.coarse_len -= spill.len();
                for event in spill.drain(..) {
                    let bucket = Self::bucket_of(event.time);
                    Self::slot_insert(
                        &mut self.slots,
                        &mut self.occupied,
                        &mut self.near_len,
                        event,
                        bucket,
                    );
                }
                self.coarse[c] = spill;
            }
            while let Some(Reverse(Entry(e))) = self.far.peek() {
                if Self::bucket_of(e.time) >> LOG2_BUCKETS != next_coarse {
                    break;
                }
                let Reverse(Entry(event)) = self.far.pop().expect("peeked");
                let bucket = Self::bucket_of(event.time);
                Self::slot_insert(
                    &mut self.slots,
                    &mut self.occupied,
                    &mut self.near_len,
                    event,
                    bucket,
                );
            }
        }
    }

    fn pop(&mut self) -> Option<Event<E>> {
        if self.cur.is_empty() && !self.activate_next_bucket() {
            return None;
        }
        self.len -= 1;
        self.cur.pop()
    }

    /// Pops the next event only if it fires exactly at `time` — the
    /// engine's zero-copy same-instant drain: after `pop` hands out an
    /// instant's first event, `pop_at` yields the rest one by one
    /// (each an O(1) pop off the active bucket), including events a
    /// handler schedules *at* the instant being drained (they carry
    /// higher sequence ids, so handing them out last is exactly the
    /// `(time, seq)` order).
    fn pop_at(&mut self, time: SimTime) -> Option<Event<E>> {
        if self.cur.is_empty() && !self.activate_next_bucket() {
            return None;
        }
        match self.cur.last() {
            Some(e) if e.time == time => {
                self.len -= 1;
                self.cur.pop()
            }
            _ => None,
        }
    }

    /// Drains every event at the earliest pending instant into `out`
    /// (appended in `(time, seq)` order), returning how many.
    fn pop_batch(&mut self, out: &mut Vec<Event<E>>) -> usize {
        let first = match self.pop() {
            Some(e) => e,
            None => return 0,
        };
        let time = first.time;
        out.push(first);
        let mut n = 1;
        // All remaining events at exactly `time` share its bucket and
        // are therefore already sorted at the pop end of `cur`.
        while self.cur.last().map(|e| e.time == time).unwrap_or(false) {
            out.push(self.cur.pop().expect("peeked"));
            self.len -= 1;
            n += 1;
        }
        n
    }

    fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.cur.last() {
            return Some(e.time);
        }
        // Tiers are strictly ordered (everything in a farther tier
        // lives in a later bucket), so the first non-empty tier
        // answers — except that the far heap's head may share a coarse
        // bucket with the rung's next slot, where the plain minimum
        // decides.
        if self.near_len > 0 {
            let bucket = next_occupied::<BUCKETS>(&self.occupied, self.cur_bucket)?;
            let s = (bucket & MASK) as usize;
            return self.slots[s].iter().map(|e| e.time).min();
        }
        let far = self.far.peek().map(|Reverse(Entry(e))| e.time);
        if self.coarse_len > 0 {
            let coarse =
                next_occupied::<COARSE>(&self.coarse_occupied, self.base_bucket >> LOG2_BUCKETS)?;
            let c = (coarse & CMASK) as usize;
            let rung_min = self.coarse[c].iter().map(|e| e.time).min();
            return match (rung_min, far) {
                (Some(a), Some(b)) if Self::bucket_of(b) >> LOG2_BUCKETS <= coarse => {
                    Some(a.min(b))
                }
                (Some(a), _) => Some(a),
                (None, b) => b,
            };
        }
        far
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// Backed by the calendar queue described in the module docs; tests
/// (and the `reference-queue` feature) can instead construct the
/// retired binary-heap implementation via [`EventQueue::reference`] to
/// cross-check dispatch order and simulation reports.
pub struct EventQueue<E> {
    imp: QueueImpl<E>,
    next_seq: u64,
}

// The calendar variant is intentionally inline (it is the only
// variant production builds contain; boxing it would cost a pointer
// chase on every queue operation).
#[allow(clippy::large_enum_variant)]
enum QueueImpl<E> {
    Calendar(CalendarQueue<E>),
    #[cfg(any(test, feature = "reference-queue"))]
    Reference(reference::ReferenceQueue<E>),
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { imp: QueueImpl::Calendar(CalendarQueue::new()), next_seq: 0 }
    }

    /// Creates an empty queue pre-sized for roughly `events` pending
    /// events (a hint: the queue grows past it transparently).
    pub fn with_capacity(events: usize) -> Self {
        let mut queue = Self::new();
        queue.reserve(events);
        queue
    }

    /// Creates the retired binary-heap queue — the seed
    /// implementation, kept as the ordering oracle for the calendar
    /// queue's determinism suites.
    #[cfg(any(test, feature = "reference-queue"))]
    pub fn reference() -> Self {
        Self { imp: QueueImpl::Reference(reference::ReferenceQueue::new()), next_seq: 0 }
    }

    /// Pre-sizes internal storage for roughly `events` additional
    /// pending events.
    pub fn reserve(&mut self, events: usize) {
        match &mut self.imp {
            QueueImpl::Calendar(q) => q.reserve(events),
            #[cfg(any(test, feature = "reference-queue"))]
            QueueImpl::Reference(q) => q.reserve(events),
        }
    }

    /// Schedules `payload` for `target` at `time`, returning the
    /// assigned sequence id.
    pub fn push(&mut self, time: SimTime, target: ComponentId, payload: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let event = Event { time, seq, target, payload };
        match &mut self.imp {
            QueueImpl::Calendar(q) => q.push(event),
            #[cfg(any(test, feature = "reference-queue"))]
            QueueImpl::Reference(q) => q.push(event),
        }
        seq
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<E>> {
        match &mut self.imp {
            QueueImpl::Calendar(q) => q.pop(),
            #[cfg(any(test, feature = "reference-queue"))]
            QueueImpl::Reference(q) => q.pop(),
        }
    }

    /// Pops the next event only if it fires exactly at `time`.
    ///
    /// This is the engine's zero-copy same-instant drain: `pop` the
    /// instant's first event, then `pop_at(now)` until `None` — every
    /// event of the burst comes off the active bucket in O(1) with no
    /// intermediate buffer, in exact `(time, seq)` order (including
    /// events scheduled *at* the instant mid-drain, which carry higher
    /// sequence ids and surface last).
    pub fn pop_at(&mut self, time: SimTime) -> Option<Event<E>> {
        match &mut self.imp {
            QueueImpl::Calendar(q) => q.pop_at(time),
            #[cfg(any(test, feature = "reference-queue"))]
            QueueImpl::Reference(q) => q.pop_at(time),
        }
    }

    /// Drains every event sharing the earliest pending timestamp into
    /// `out` (appended in `(time, seq)` order), returning how many
    /// were moved — the buffered counterpart of [`Self::pop_at`] for
    /// callers that want the whole burst at once.
    pub fn pop_batch(&mut self, out: &mut Vec<Event<E>>) -> usize {
        match &mut self.imp {
            QueueImpl::Calendar(q) => q.pop_batch(out),
            #[cfg(any(test, feature = "reference-queue"))]
            QueueImpl::Reference(q) => q.pop_batch(out),
        }
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.imp {
            QueueImpl::Calendar(q) => q.peek_time(),
            #[cfg(any(test, feature = "reference-queue"))]
            QueueImpl::Reference(q) => q.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.imp {
            QueueImpl::Calendar(q) => q.len,
            #[cfg(any(test, feature = "reference-queue"))]
            QueueImpl::Reference(q) => q.len(),
        }
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The seed-era binary-heap queue, kept verbatim as the ordering
/// oracle for the calendar queue. Compiled only for tests and under
/// the `reference-queue` feature; it takes no part in production
/// simulation.
#[cfg(any(test, feature = "reference-queue"))]
pub(crate) mod reference {
    use super::{Entry, Event};
    use crate::time::SimTime;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// A `(time, seq)`-ordered binary heap — the original event queue.
    pub(crate) struct ReferenceQueue<E> {
        heap: BinaryHeap<Reverse<Entry<E>>>,
    }

    impl<E> ReferenceQueue<E> {
        pub(crate) fn new() -> Self {
            Self { heap: BinaryHeap::new() }
        }

        pub(crate) fn reserve(&mut self, events: usize) {
            self.heap.reserve(events);
        }

        pub(crate) fn push(&mut self, event: Event<E>) {
            self.heap.push(Reverse(Entry(event)));
        }

        pub(crate) fn pop(&mut self) -> Option<Event<E>> {
            self.heap.pop().map(|Reverse(Entry(ev))| ev)
        }

        pub(crate) fn pop_at(&mut self, time: SimTime) -> Option<Event<E>> {
            if self.peek_time() == Some(time) {
                return self.pop();
            }
            None
        }

        pub(crate) fn pop_batch(&mut self, out: &mut Vec<Event<E>>) -> usize {
            let first = match self.pop() {
                Some(e) => e,
                None => return 0,
            };
            let time = first.time;
            out.push(first);
            let mut n = 1;
            while self.peek_time() == Some(time) {
                out.push(self.pop().expect("peeked"));
                n += 1;
            }
            n
        }

        pub(crate) fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|Reverse(Entry(ev))| ev.time)
        }

        pub(crate) fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    const T: ComponentId = ComponentId(0);

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(5.0), T, "c");
        q.push(SimTime::from_ns(1.0), T, "a");
        q.push(SimTime::from_ns(3.0), T, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn same_time_pops_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(7.0), T, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sub_bucket_times_stay_ordered() {
        // Many distinct timestamps inside one 1 ns bucket.
        let mut q = EventQueue::new();
        for i in (0..64).rev() {
            q.push(SimTime::from_ns(i as f64 / 100.0), T, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_events_interleave_with_near_ones() {
        // An event far beyond the ring horizon must still pop before a
        // later near event scheduled after the window advanced.
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(1e6), T, "far");
        q.push(SimTime::from_ns(2.0), T, "near");
        assert_eq!(q.pop().unwrap().payload, "near");
        // The window has advanced to bucket 2; bucket 1e6 still sits
        // beyond it in the far heap, while this lands in the ring:
        q.push(SimTime::from_ns(900.0), T, "mid");
        assert_eq!(q.pop().unwrap().payload, "mid");
        assert_eq!(q.pop().unwrap().payload, "far");
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_event_earlier_than_ring_tail_pops_first() {
        // Regression shape: with the window anchored at 0, `tail`
        // (inside the window) lands in the ring while `far` (beyond
        // it) goes to the heap. After draining the head the window
        // advances; `far` is then *earlier* than `tail` and must
        // migrate in ahead of it.
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, T, "head");
        q.push(SimTime::from_ns((BUCKETS as f64) * BUCKET_NS + 500.0), T, "far2");
        assert_eq!(q.pop().unwrap().payload, "head");
        q.push(SimTime::from_ns((BUCKETS as f64) * BUCKET_NS + 900.0), T, "tail");
        assert_eq!(q.pop().unwrap().payload, "far2");
        assert_eq!(q.pop().unwrap().payload, "tail");
    }

    #[test]
    fn push_into_active_bucket_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(5.5), T, 0);
        q.push(SimTime::from_ns(5.7), T, 1);
        assert_eq!(q.pop().unwrap().payload, 0);
        // Bucket 5 is active; these same-bucket pushes must insert in
        // time order ahead of 5.7.
        q.push(SimTime::from_ns(5.6), T, 2);
        q.push(SimTime::from_ns(5.6), T, 3);
        q.push(SimTime::from_ns(5.9), T, 4);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, [2, 3, 1, 4]);
    }

    #[test]
    fn coarse_rung_and_far_heap_preserve_order() {
        // One event per tier (fine ring, coarse rung, far heap), then
        // pops interleaved with pushes that land in spilled windows.
        let mut q = EventQueue::new();
        let fine = 100.0;
        let rung = (BUCKETS as f64) * BUCKET_NS * 3.5; // ~28.7 us
        let heap = (BUCKETS * COARSE) as f64 * BUCKET_NS * 2.0; // ~8.4 ms
        q.push(SimTime::from_ns(heap), T, "far");
        q.push(SimTime::from_ns(rung), T, "rung");
        q.push(SimTime::from_ns(fine), T, "fine");
        assert_eq!(q.pop().unwrap().payload, "fine");
        // After draining the fine window, the coarse bucket spills.
        assert_eq!(q.pop().unwrap().payload, "rung");
        // New pushes near the far event land in the rung now.
        q.push(SimTime::from_ns(heap - 1_000.0), T, "late-rung");
        assert_eq!(q.pop().unwrap().payload, "late-rung");
        assert_eq!(q.pop().unwrap().payload, "far");
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_coarse_bucket_far_and_rung_events_interleave() {
        // A far-heap event and a later rung push that fall in the SAME
        // coarse bucket: the refill must merge both in time order.
        let mut q = EventQueue::new();
        let span = (BUCKETS * COARSE) as f64 * BUCKET_NS; // ladder horizon
        q.push(SimTime::ZERO, T, "now");
        q.push(SimTime::from_ns(span + 500.0), T, "far-a");
        assert_eq!(q.pop().unwrap().payload, "now");
        // Window advanced; this lands in the rung, same coarse bucket,
        // earlier time than far-a.
        q.push(SimTime::from_ns(span + 100.0), T, "rung-b");
        assert_eq!(q.pop().unwrap().payload, "rung-b");
        assert_eq!(q.pop().unwrap().payload, "far-a");
    }

    #[test]
    fn rewind_restores_tier_order() {
        // Review repro: a backward push spills the ladder into the far
        // heap and re-anchors; events the new fine window covers must
        // come back out, or later ring pushes would overtake them.
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(80.0), T, "a");
        q.push(SimTime::from_ns(400.0), T, "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        // Backward push (public API; the engine never does this).
        q.push(SimTime::from_ns(8.0), T, "early");
        assert_eq!(q.pop().unwrap().payload, "early");
        q.push(SimTime::from_ns(800.0), T, "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["b", "c"], "far-spilled events must not be overtaken");
    }

    #[test]
    fn pop_batch_drains_one_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(3.0), T, 10);
        q.push(SimTime::from_ns(1.0), T, 0);
        q.push(SimTime::from_ns(1.0), T, 1);
        q.push(SimTime::from_ns(1.0), T, 2);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), 3);
        assert_eq!(out.iter().map(|e| e.payload).collect::<Vec<_>>(), [0, 1, 2]);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), 1);
        assert_eq!(out[0].payload, 10);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), 0);
    }

    #[test]
    fn peek_time_sees_all_tiers() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(1e7), T, 0);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(1e7)));
        q.push(SimTime::from_ns(42.0), T, 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(42.0)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(1e7)));
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut q = EventQueue::with_capacity(10_000);
        for i in 0..100 {
            q.push(SimTime::from_ns((i % 7) as f64), T, i);
        }
        assert_eq!(q.len(), 100);
        let mut last = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some(e) = q.pop() {
            assert!((e.time, e.seq) >= last);
            last = (e.time, e.seq);
            n += 1;
        }
        assert_eq!(n, 100);
    }

    /// Exhaustive cross-check against the retired heap: a seeded
    /// pseudo-random schedule of pushes (near, far, same-instant
    /// bursts, sub-ns spacings) interleaved with pops and batch pops
    /// must produce the identical `(time, seq, payload)` stream.
    #[test]
    fn matches_reference_queue_on_random_schedules() {
        for seed in 0..8u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut calendar = EventQueue::new();
            let mut reference = EventQueue::reference();
            let mut now = 0.0f64;
            let mut popped = Vec::new();
            let mut popped_ref = Vec::new();
            for step in 0..5_000u32 {
                let roll = rng.next_u64() % 100;
                if roll < 60 {
                    // Push with a spread of delays: same-instant, sub-ns,
                    // near, and far-future jumps.
                    let delay = match rng.next_u64() % 7 {
                        0 => 0.0,
                        1 => (rng.next_u64() % 100) as f64 / 1000.0,
                        2 => (rng.next_u64() % 200) as f64,
                        3 => (rng.next_u64() % 5_000) as f64,
                        // Coarse-rung territory (beyond the fine ring).
                        4 => 10_000.0 + (rng.next_u64() % 100_000) as f64,
                        // Deeper into the rung (hundreds of us).
                        5 => (rng.next_u64() % 4_000_000) as f64,
                        // Beyond the whole ladder: the far heap.
                        _ => 5_000_000.0 + (rng.next_u64() % 50_000_000) as f64,
                    };
                    let t = SimTime::from_ns(now + delay);
                    let a = calendar.push(t, T, step);
                    let b = reference.push(t, T, step);
                    assert_eq!(a, b, "sequence ids must match");
                } else if roll < 90 {
                    let a = calendar.pop();
                    let b = reference.pop();
                    match (&a, &b) {
                        (Some(x), Some(y)) => {
                            assert_eq!((x.time, x.seq, x.payload), (y.time, y.seq, y.payload));
                            now = x.time.as_ns();
                        }
                        (None, None) => {}
                        _ => panic!("queues disagree on emptiness"),
                    }
                    if let Some(e) = a {
                        popped.push((e.time, e.seq));
                        popped_ref.push((e.time, e.seq));
                    }
                } else {
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    assert_eq!(calendar.pop_batch(&mut a), reference.pop_batch(&mut b));
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!((x.time, x.seq, x.payload), (y.time, y.seq, y.payload));
                    }
                    if let Some(last) = a.last() {
                        assert!(a.iter().all(|e| e.time == last.time), "one instant per batch");
                        now = last.time.as_ns();
                    }
                    popped.extend(a.iter().map(|e| (e.time, e.seq)));
                    popped_ref.extend(b.iter().map(|e| (e.time, e.seq)));
                }
                assert_eq!(calendar.len(), reference.len());
            }
            // Drain both completely and verify global order.
            loop {
                match (calendar.pop(), reference.pop()) {
                    (Some(x), Some(y)) => {
                        assert_eq!((x.time, x.seq), (y.time, y.seq));
                        popped.push((x.time, x.seq));
                    }
                    (None, None) => break,
                    _ => panic!("queues disagree on emptiness"),
                }
            }
            for pair in popped.windows(2) {
                assert!(pair[0] < pair[1], "strict (time, seq) order: {pair:?}");
            }
        }
    }
}
