//! The event queue: a binary heap with stable, deterministic ordering.

use crate::time::SimTime;
use crate::ComponentId;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// An event popped from the queue.
#[derive(Debug, Clone)]
pub struct Event<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Global sequence id (schedule order); the tiebreaker for
    /// same-time events.
    pub seq: u64,
    /// The component the event is addressed to.
    pub target: ComponentId,
    /// The event payload.
    pub payload: E,
}

struct Entry<E>(Event<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // (time, seq): identical times process in schedule order, so
        // runs are bit-reproducible regardless of heap internals.
        self.0.time.cmp(&other.0.time).then(self.0.seq.cmp(&other.0.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` for `target` at `time`, returning the
    /// assigned sequence id.
    pub fn push(&mut self, time: SimTime, target: ComponentId, payload: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry(Event { time, seq, target, payload })));
        seq
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<E>> {
        self.heap.pop().map(|Reverse(Entry(ev))| ev)
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(Entry(ev))| ev.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: ComponentId = ComponentId(0);

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(5.0), T, "c");
        q.push(SimTime::from_ns(1.0), T, "a");
        q.push(SimTime::from_ns(3.0), T, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn same_time_pops_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(7.0), T, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }
}
