//! Simulation time as a totally ordered newtype.
//!
//! Raw `f64` timestamps have two footguns for an event queue: `NaN`
//! poisons every comparison, and ad-hoc `max`/`<` bookkeeping spreads
//! through simulator code. [`SimTime`] is a nanosecond timestamp that
//! is guaranteed finite and non-negative at construction, so it can
//! implement [`Ord`] honestly and key a binary heap.

use std::fmt;
use std::ops::{Add, Sub};

/// A point in simulated time, in nanoseconds from simulation start.
///
/// Always finite and non-negative; construction panics otherwise, so
/// every arithmetic bug surfaces at its source instead of corrupting
/// the event queue's ordering.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct SimTime(f64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is NaN, infinite, or negative.
    pub fn from_ns(ns: f64) -> Self {
        assert!(ns.is_finite(), "non-finite simulation time {ns}");
        assert!(ns >= 0.0, "negative simulation time {ns}");
        // Normalize -0.0 so bit-level comparisons cannot diverge.
        Self(ns + 0.0)
    }

    /// The timestamp in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0
    }

    /// This time advanced by `delta_ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the result would be non-finite or negative.
    pub fn advance(self, delta_ns: f64) -> Self {
        Self::from_ns(self.0 + delta_ns)
    }

    /// The later of two times.
    pub fn max(self, other: Self) -> Self {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Finite + non-negative makes total_cmp agree with numeric
        // comparison.
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, delta_ns: f64) -> SimTime {
        self.advance(delta_ns)
    }
}

impl Sub for SimTime {
    type Output = f64;

    fn sub(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_numeric() {
        let mut times =
            [SimTime::from_ns(3.0), SimTime::ZERO, SimTime::from_ns(1.5), SimTime::from_ns(1.5)];
        times.sort();
        assert_eq!(times[0], SimTime::ZERO);
        assert_eq!(times[3], SimTime::from_ns(3.0));
    }

    #[test]
    fn negative_zero_normalizes() {
        assert_eq!(SimTime::from_ns(-0.0), SimTime::ZERO);
        assert_eq!(SimTime::from_ns(-0.0).cmp(&SimTime::ZERO), std::cmp::Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let _ = SimTime::from_ns(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_rejected() {
        let _ = SimTime::from_ns(-1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(10.0) + 2.5;
        assert_eq!(t.as_ns(), 12.5);
        assert_eq!(t - SimTime::from_ns(10.0), 2.5);
        assert_eq!(t.max(SimTime::from_ns(99.0)).as_ns(), 99.0);
    }
}
