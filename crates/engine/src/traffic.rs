//! Open-loop arrival processes for request-driven simulation.
//!
//! A serving frontend needs request *arrival times* that are (a)
//! independent of what the simulated system does with them (open
//! loop) and (b) byte-reproducible per seed. This module provides the
//! two classic models over [`SimRng`]:
//!
//! * [`TrafficModel::Poisson`] — memoryless arrivals at a constant
//!   rate: the standard steady-load model.
//! * [`TrafficModel::Mmpp`] — a two-state Markov-modulated Poisson
//!   process: exponentially-dwelling *calm* and *burst* phases, each
//!   with its own Poisson rate. The workhorse bursty-traffic model —
//!   the mean rate matches a Poisson source of the same average, but
//!   arrivals clump, which is what stresses queues and tails.
//!
//! [`ArrivalGen`] turns a model + seed into a deterministic stream of
//! inter-arrival gaps. It owns its own [`SimRng`] (rather than
//! borrowing the engine's) so the arrival sequence is a pure function
//! of `(model, seed)` — replaying the same traffic against different
//! system configurations never perturbs it.

use crate::rng::SimRng;

/// An open-loop arrival process (rates in requests per second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficModel {
    /// Memoryless arrivals at a constant mean rate.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_per_s: f64,
    },
    /// Two-state Markov-modulated Poisson process: the source dwells
    /// exponentially in a calm phase, then a burst phase, and emits
    /// Poisson arrivals at the phase's rate. Starts calm.
    Mmpp {
        /// Arrival rate during the calm phase, requests per second.
        calm_rate_per_s: f64,
        /// Arrival rate during the burst phase, requests per second.
        burst_rate_per_s: f64,
        /// Mean dwell time in the calm phase, seconds.
        mean_calm_s: f64,
        /// Mean dwell time in the burst phase, seconds.
        mean_burst_s: f64,
    },
}

impl TrafficModel {
    /// Long-run mean arrival rate in requests per second (phase-dwell
    /// weighted for MMPP).
    pub fn mean_rate_per_s(&self) -> f64 {
        match *self {
            TrafficModel::Poisson { rate_per_s } => rate_per_s,
            TrafficModel::Mmpp { calm_rate_per_s, burst_rate_per_s, mean_calm_s, mean_burst_s } => {
                let total = mean_calm_s + mean_burst_s;
                if total > 0.0 {
                    (calm_rate_per_s * mean_calm_s + burst_rate_per_s * mean_burst_s) / total
                } else {
                    0.0
                }
            }
        }
    }
}

/// A deterministic stream of inter-arrival gaps for a
/// [`TrafficModel`]. Same `(model, seed)` → same gap sequence,
/// bit-for-bit.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    model: TrafficModel,
    rng: SimRng,
    /// MMPP phase: `true` while bursting.
    burst: bool,
    /// Seconds left in the current MMPP phase.
    dwell_s: f64,
}

impl ArrivalGen {
    /// Creates a generator for `model` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics on negative rates or non-positive MMPP dwell means.
    pub fn new(model: TrafficModel, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let (burst, dwell_s) = match model {
            TrafficModel::Poisson { rate_per_s } => {
                assert!(rate_per_s >= 0.0, "negative Poisson rate");
                (false, f64::INFINITY)
            }
            TrafficModel::Mmpp { calm_rate_per_s, burst_rate_per_s, mean_calm_s, mean_burst_s } => {
                assert!(calm_rate_per_s >= 0.0 && burst_rate_per_s >= 0.0, "negative MMPP rate");
                assert!(mean_calm_s > 0.0 && mean_burst_s > 0.0, "non-positive MMPP dwell mean");
                let dwell = exp_sample(&mut rng, 1.0 / mean_calm_s);
                (false, dwell)
            }
        };
        Self { model, rng, burst, dwell_s }
    }

    /// The model this stream samples.
    pub fn model(&self) -> TrafficModel {
        self.model
    }

    /// Appends up to `count` more *absolute* arrival instants (ns) to
    /// `out`, continuing from `now_ns`, and returns the instant of the
    /// last arrival emitted (or `now_ns` untouched when the model runs
    /// dry immediately). One reservation covers the whole chunk, and
    /// the draw sequence is exactly `count` [`Self::next_gap_ns`]
    /// calls — chunked generation is bit-identical to one-at-a-time
    /// generation, it just amortizes the per-arrival bookkeeping.
    pub fn fill_arrivals_ns(&mut self, mut now_ns: f64, count: usize, out: &mut Vec<f64>) -> f64 {
        out.reserve(count);
        for _ in 0..count {
            let Some(gap) = self.next_gap_ns() else { break };
            now_ns += gap;
            out.push(now_ns);
        }
        now_ns
    }

    /// The gap to the next arrival, in nanoseconds. Returns `None`
    /// when the model can never emit another arrival (zero-rate
    /// Poisson, or an MMPP with both rates zero).
    pub fn next_gap_ns(&mut self) -> Option<f64> {
        match self.model {
            TrafficModel::Poisson { rate_per_s } => {
                if rate_per_s <= 0.0 {
                    return None;
                }
                Some(exp_sample(&mut self.rng, rate_per_s) * 1e9)
            }
            TrafficModel::Mmpp { calm_rate_per_s, burst_rate_per_s, mean_calm_s, mean_burst_s } => {
                if calm_rate_per_s <= 0.0 && burst_rate_per_s <= 0.0 {
                    return None;
                }
                let mut gap_s = 0.0;
                loop {
                    let rate = if self.burst { burst_rate_per_s } else { calm_rate_per_s };
                    // Memorylessness lets us sample a fresh candidate
                    // after each phase switch.
                    let candidate =
                        if rate > 0.0 { exp_sample(&mut self.rng, rate) } else { f64::INFINITY };
                    if candidate <= self.dwell_s {
                        self.dwell_s -= candidate;
                        return Some((gap_s + candidate) * 1e9);
                    }
                    gap_s += self.dwell_s;
                    self.burst = !self.burst;
                    let mean = if self.burst { mean_burst_s } else { mean_calm_s };
                    self.dwell_s = exp_sample(&mut self.rng, 1.0 / mean);
                }
            }
        }
    }
}

/// One draw from Exp(rate) via inversion; `rate > 0`.
fn exp_sample(rng: &mut SimRng, rate: f64) -> f64 {
    // next_f64 ∈ [0, 1) keeps the ln argument in (0, 1]: the sample
    // is finite and non-negative.
    -(1.0 - rng.next_f64()).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_seed_deterministic() {
        let model = TrafficModel::Poisson { rate_per_s: 1e6 };
        let mut a = ArrivalGen::new(model, 7);
        let mut b = ArrivalGen::new(model, 7);
        for _ in 0..256 {
            assert_eq!(a.next_gap_ns(), b.next_gap_ns());
        }
        let mut c = ArrivalGen::new(model, 8);
        assert!((0..8).any(|_| a.next_gap_ns() != c.next_gap_ns()));
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let rate = 1e6; // one request per microsecond
        let mut g = ArrivalGen::new(TrafficModel::Poisson { rate_per_s: rate }, 11);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| g.next_gap_ns().unwrap()).sum();
        let mean_ns = total / n as f64;
        let expect_ns = 1e9 / rate;
        assert!(
            (mean_ns - expect_ns).abs() / expect_ns < 0.05,
            "mean gap {mean_ns} ns vs expected {expect_ns} ns"
        );
    }

    #[test]
    fn mmpp_mean_rate_is_dwell_weighted() {
        let model = TrafficModel::Mmpp {
            calm_rate_per_s: 1e5,
            burst_rate_per_s: 1e6,
            mean_calm_s: 3e-3,
            mean_burst_s: 1e-3,
        };
        let mean = model.mean_rate_per_s();
        assert!((mean - 3.25e5).abs() < 1.0);
        // Empirical mean over many arrivals approaches it.
        let mut g = ArrivalGen::new(model, 13);
        let n = 50_000;
        let total_ns: f64 = (0..n).map(|_| g.next_gap_ns().unwrap()).sum();
        let empirical = n as f64 / (total_ns * 1e-9);
        assert!(
            (empirical - mean).abs() / mean < 0.1,
            "empirical rate {empirical}/s vs model mean {mean}/s"
        );
    }

    #[test]
    fn mmpp_bursts_clump_arrivals() {
        // Same mean rate, but the MMPP variance of the gap stream must
        // exceed the Poisson one (burstiness = overdispersion).
        let mmpp = TrafficModel::Mmpp {
            calm_rate_per_s: 2e5,
            burst_rate_per_s: 2e6,
            mean_calm_s: 5e-3,
            mean_burst_s: 1e-3,
        };
        let poisson = TrafficModel::Poisson { rate_per_s: mmpp.mean_rate_per_s() };
        let sq_cv = |model: TrafficModel| {
            let mut g = ArrivalGen::new(model, 17);
            let gaps: Vec<f64> = (0..30_000).map(|_| g.next_gap_ns().unwrap()).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson_cv2 = sq_cv(poisson);
        let mmpp_cv2 = sq_cv(mmpp);
        assert!((poisson_cv2 - 1.0).abs() < 0.1, "Poisson CV² ≈ 1, got {poisson_cv2}");
        assert!(mmpp_cv2 > 1.5, "MMPP must be overdispersed, CV² = {mmpp_cv2}");
    }

    #[test]
    fn chunked_fill_matches_one_at_a_time_generation() {
        let model = TrafficModel::Mmpp {
            calm_rate_per_s: 1e5,
            burst_rate_per_s: 1e6,
            mean_calm_s: 1e-3,
            mean_burst_s: 1e-4,
        };
        let mut slow = ArrivalGen::new(model, 23);
        let mut expect = Vec::new();
        let mut now = 0.0;
        for _ in 0..300 {
            now += slow.next_gap_ns().unwrap();
            expect.push(now);
        }
        // Uneven chunk sizes must splice into the identical stream.
        let mut fast = ArrivalGen::new(model, 23);
        let mut got = Vec::new();
        let mut tail = 0.0;
        for chunk in [1, 7, 64, 300 - 1 - 7 - 64] {
            tail = fast.fill_arrivals_ns(tail, chunk, &mut got);
        }
        assert_eq!(got, expect, "chunked fill is bit-identical to per-call draws");
        assert_eq!(tail, *expect.last().unwrap());
        // A dry model leaves `out` and the clock untouched.
        let mut dry = ArrivalGen::new(TrafficModel::Poisson { rate_per_s: 0.0 }, 1);
        let mut out = Vec::new();
        assert_eq!(dry.fill_arrivals_ns(5.0, 8, &mut out), 5.0);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_rate_sources_run_dry() {
        let mut g = ArrivalGen::new(TrafficModel::Poisson { rate_per_s: 0.0 }, 1);
        assert_eq!(g.next_gap_ns(), None);
        let mut g = ArrivalGen::new(
            TrafficModel::Mmpp {
                calm_rate_per_s: 0.0,
                burst_rate_per_s: 0.0,
                mean_calm_s: 1.0,
                mean_burst_s: 1.0,
            },
            1,
        );
        assert_eq!(g.next_gap_ns(), None);
    }
}
