//! The engine: clock + event queue + component registry + RNG.

use crate::queue::{Event, EventQueue};
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::ComponentId;
use std::any::Any;

/// A simulation component: anything that owns state and reacts to
/// events addressed to it (a core, a bus, a memory controller, ...).
///
/// Components communicate exclusively by scheduling events through
/// the [`EngineCtx`] they are handed — never by calling each other
/// directly — which is what makes the simulation composable and the
/// event order the single source of truth for time.
pub trait Component<E>: Any {
    /// Reacts to one event addressed to this component.
    fn on_event(&mut self, event: Event<E>, ctx: &mut EngineCtx<'_, E>);

    /// Upcast for post-run state extraction via
    /// [`Engine::extract`]. Implementations are always `self`.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Cold panic helpers: the schedule calls sit on the simulator's
/// hottest path, and inlining `panic!` format machinery there costs
/// registers and icache on every call. The checks stay (a past event
/// is a simulator bug that must fail loudly in every build); only the
/// formatting is moved out of line.
#[cold]
#[inline(never)]
fn past_schedule_panic(time: SimTime, now: SimTime) -> ! {
    panic!("cannot schedule into the past: {time} < {now}");
}

#[cold]
#[inline(never)]
fn past_delay_panic(delay_ns: f64) -> ! {
    panic!("cannot schedule into the past: delay {delay_ns} ns");
}

#[cold]
#[inline(never)]
fn missing_component_panic() -> ! {
    panic!("event addressed to missing component");
}

#[cold]
#[inline(never)]
fn backwards_queue_panic() -> ! {
    panic!("event queue went backwards");
}

/// An event addressed to a component that lives in another shard of a
/// partitioned simulation.
///
/// When export capture is enabled ([`Engine::enable_exports`]),
/// dispatching an event whose target slot is vacant records the event
/// here — at its scheduled time, in exact `(time, seq)` pop order —
/// instead of panicking. The shard coordinator forwards captured
/// events to the owning shard (see the `sharded` feature's
/// `run_sharded`).
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteEvent<E> {
    /// The instant the event was scheduled to fire.
    pub time: SimTime,
    /// The (vacant-here, live-elsewhere) component it addresses.
    pub target: ComponentId,
    /// The event payload.
    pub payload: E,
}

/// The slice of engine state a component may touch while handling an
/// event: the clock, the queue, the seeded RNG, and the spawn list
/// (for registering new components — never for reaching into a peer).
pub struct EngineCtx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    rng: &'a mut SimRng,
    /// Components spawned during the current dispatch; the engine
    /// folds them into the registry right after the handler returns,
    /// so the dispatched component itself never has to leave its slot.
    spawned: &'a mut Vec<Box<dyn Component<E>>>,
    /// Number of components already in the registry (spawn ids start
    /// here + the spawn list length).
    registered: usize,
}

impl<E: 'static> EngineCtx<'_, E> {
    /// Registers a new component mid-run, returning its address.
    /// Orchestrator components use this to spawn workers whose start
    /// time is only known dynamically (e.g. a chip sequencer spawning
    /// its cores when a pipeline stage's inputs arrive).
    pub fn add_component<C: Component<E>>(&mut self, component: C) -> ComponentId {
        let id = ComponentId(self.registered + self.spawned.len());
        self.spawned.push(Box::new(component));
        id
    }
}

impl<E> EngineCtx<'_, E> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` for `target` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the clock (events cannot fire
    /// in the past).
    #[inline]
    pub fn schedule(&mut self, time: SimTime, target: ComponentId, payload: E) {
        if time < self.now {
            past_schedule_panic(time, self.now);
        }
        self.queue.push(time, target, payload);
    }

    /// Schedules `payload` for `target` after `delay_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `delay_ns` is negative or non-finite (events cannot
    /// fire in the past).
    #[inline]
    pub fn schedule_in(&mut self, delay_ns: f64, target: ComponentId, payload: E) {
        // NaN must panic too, so order the comparison to catch it.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(delay_ns >= 0.0) {
            past_delay_panic(delay_ns);
        }
        let time = self.now.advance(delay_ns);
        self.queue.push(time, target, payload);
    }

    /// The engine's seeded RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

/// A deterministic discrete-event simulation engine.
///
/// Events are processed in `(time, sequence)` order; the sequence id
/// is assigned at scheduling time, so two runs with the same seed and
/// the same component behaviour produce bit-identical histories.
///
/// Dispatch drains the queue one *instant* at a time: the instant's
/// first event comes from a full pop, the rest of the burst from
/// [`EventQueue::pop_at`] — O(1) pops off the queue's active bucket —
/// delivered in sequence order while the target components stay in
/// their registry slots. No per-event `Option::take`/put round-trip,
/// no per-event allocation, no intermediate batch buffer.
///
/// # Example
///
/// ```
/// use pim_engine::{Component, Engine, EngineCtx, Event, SimTime};
///
/// struct Counter {
///     fired: Vec<f64>,
/// }
///
/// impl Component<u32> for Counter {
///     fn on_event(&mut self, event: Event<u32>, ctx: &mut EngineCtx<'_, u32>) {
///         self.fired.push(event.time.as_ns());
///         if event.payload > 0 {
///             ctx.schedule_in(10.0, event.target, event.payload - 1);
///         }
///     }
///     fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
///         self
///     }
/// }
///
/// let mut engine = Engine::new(7);
/// let id = engine.add_component(Counter { fired: Vec::new() });
/// engine.schedule(SimTime::ZERO, id, 2);
/// engine.run_until_idle();
/// let counter: Counter = engine.extract(id).unwrap();
/// assert_eq!(counter.fired, vec![0.0, 10.0, 20.0]);
/// ```
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    components: Vec<Option<Box<dyn Component<E>>>>,
    /// Spawn list shared with dispatch (see [`EngineCtx`]); kept here
    /// so its allocation is reused across events.
    spawned: Vec<Box<dyn Component<E>>>,
    rng: SimRng,
    processed: u64,
    /// `Some` when export capture is on: events addressed to vacant
    /// slots land here (in pop order) instead of panicking.
    exports: Option<Vec<RemoteEvent<E>>>,
}

impl<E: 'static> Engine<E> {
    /// Creates an idle engine whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            components: Vec::new(),
            spawned: Vec::new(),
            rng: SimRng::seed_from_u64(seed),
            processed: 0,
            exports: None,
        }
    }

    /// Swaps the calendar queue for the retired binary-heap reference
    /// implementation (the seed-era queue, kept as an ordering
    /// oracle). Only meaningful on a fresh engine.
    ///
    /// # Panics
    ///
    /// Panics if events are already pending — the two queues must see
    /// the identical schedule from the start.
    #[cfg(any(test, feature = "reference-queue"))]
    pub fn use_reference_queue(&mut self) {
        assert!(self.queue.is_empty(), "switch queues before scheduling");
        self.queue = EventQueue::reference();
    }

    /// Pre-sizes the event queue for roughly `events` pending events —
    /// a hint, not a limit. Simulators that know their workload size
    /// call this once before scheduling to avoid growth reallocations
    /// on the hot path.
    pub fn reserve_events(&mut self, events: usize) {
        self.queue.reserve(events);
    }

    /// Registers a component, returning its address.
    pub fn add_component<C: Component<E>>(&mut self, component: C) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Some(Box::new(component)));
        id
    }

    /// The address the next [`Self::add_component`] call will return.
    /// Lets wiring code hand a component the ids of peers that are
    /// registered right after it.
    pub fn next_component_id(&self) -> ComponentId {
        ComponentId(self.components.len())
    }

    /// Appends `n` vacant registry slots.
    ///
    /// A shard of a partitioned simulation registers only its own
    /// components but pads the slots of remote peers, so every
    /// component keeps the *global* address it would have in the
    /// single-engine layout and cross-shard events need no id
    /// translation. Dispatching to a padded slot panics unless export
    /// capture is on ([`Self::enable_exports`]).
    pub fn pad_components(&mut self, n: usize) {
        for _ in 0..n {
            self.components.push(None);
        }
    }

    /// Captures events addressed to vacant (or never-registered)
    /// component slots as [`RemoteEvent`]s instead of panicking —
    /// the outbound half of a shard's mailbox. Capture happens at
    /// dispatch time, so the export list is in exact `(time, seq)`
    /// pop order.
    pub fn enable_exports(&mut self) {
        self.exports.get_or_insert_with(Vec::new);
    }

    /// Takes the events captured since the last call (empty unless
    /// [`Self::enable_exports`] was called). Export capture stays on.
    pub fn take_exports(&mut self) -> Vec<RemoteEvent<E>> {
        self.exports.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Removes a component and downcasts it to its concrete type, for
    /// reading out final state after a run.
    ///
    /// Returns `None` if the slot is empty or the type does not
    /// match. A type mismatch is destructive: the component has
    /// already been removed and is dropped, so extract with the type
    /// the slot was registered with. (Use [`Self::component`] for a
    /// non-consuming, non-destructive probe.)
    pub fn extract<C: Component<E>>(&mut self, id: ComponentId) -> Option<C> {
        let slot = self.components.get_mut(id.0)?;
        let boxed = slot.take()?;
        match boxed.into_any().downcast::<C>() {
            Ok(c) => Some(*c),
            Err(_) => None,
        }
    }

    /// Borrows a registered component by concrete type.
    pub fn component<C: Component<E>>(&self, id: ComponentId) -> Option<&C> {
        let boxed = self.components.get(id.0)?.as_ref()?;
        (boxed.as_ref() as &dyn Any).downcast_ref::<C>()
    }

    /// The current simulation time (the timestamp of the most recent
    /// event, or the start time if nothing ran yet).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The engine's seeded RNG (for seeding initial state before a
    /// run).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules `payload` for `target` at absolute `time` from
    /// outside any component.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current clock.
    pub fn schedule(&mut self, time: SimTime, target: ComponentId, payload: E) {
        assert!(time >= self.now, "cannot schedule into the past");
        self.queue.push(time, target, payload);
    }

    /// Advances the clock to the next pending instant and dispatches
    /// every event scheduled at it — including events handlers
    /// schedule *at* the instant mid-drain — in sequence order.
    /// Returns the number of events processed, `0` when the queue is
    /// idle.
    ///
    /// The drain is zero-copy: the instant's first event comes from
    /// `pop`, the rest of the burst from [`EventQueue::pop_at`] (each
    /// an O(1) pop off the queue's active bucket), and the target
    /// components are dispatched in place — no per-event
    /// `Option::take`/put round-trip, no intermediate batch buffer.
    ///
    /// # Panics
    ///
    /// Panics if an event addresses a component that was never
    /// registered or has been extracted.
    pub fn step(&mut self) -> u64 {
        let first = match self.queue.pop() {
            Some(event) => event,
            None => return 0,
        };
        let time = first.time;
        if time < self.now {
            backwards_queue_panic();
        }
        self.now = time;
        self.dispatch(first);
        let mut n = 1u64;
        while let Some(event) = self.queue.pop_at(time) {
            self.dispatch(event);
            n += 1;
        }
        self.processed += n;
        n
    }

    /// Delivers one event to its component in place, folding any
    /// mid-dispatch spawns into the registry afterwards.
    #[inline]
    fn dispatch(&mut self, event: Event<E>) {
        let registered = self.components.len();
        let component = match self.components.get_mut(event.target.0) {
            Some(Some(c)) => c,
            _ => {
                if let Some(exports) = self.exports.as_mut() {
                    exports.push(RemoteEvent {
                        time: event.time,
                        target: event.target,
                        payload: event.payload,
                    });
                    return;
                }
                missing_component_panic()
            }
        };
        let mut ctx = EngineCtx {
            now: self.now,
            queue: &mut self.queue,
            rng: &mut self.rng,
            spawned: &mut self.spawned,
            registered,
        };
        component.on_event(event, &mut ctx);
        if !self.spawned.is_empty() {
            self.components.extend(self.spawned.drain(..).map(Some));
        }
    }

    /// Dispatches events in `(time, seq)` order until the queue is
    /// empty, returning the number of events processed.
    ///
    /// # Panics
    ///
    /// As for [`Self::step`].
    pub fn run_until_idle(&mut self) -> u64 {
        let mut count = 0u64;
        loop {
            let n = self.step();
            if n == 0 {
                return count;
            }
            count += n;
        }
    }

    /// The timestamp of the earliest pending event, if any. A shard
    /// coordinator reads this between windows to compute the next
    /// global synchronization horizon.
    pub fn peek_next_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Dispatches events in `(time, seq)` order while the earliest
    /// pending instant is strictly below `horizon`, returning the
    /// number of events processed. Because [`Self::step`] drains whole
    /// instants, every event at an instant `< horizon` is processed —
    /// including same-instant follow-ups scheduled mid-drain — and
    /// nothing at or beyond the horizon is touched.
    ///
    /// # Panics
    ///
    /// As for [`Self::step`].
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut count = 0u64;
        while let Some(next) = self.queue.peek_time() {
            if next >= horizon {
                break;
            }
            count += self.step();
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two components ping-ponging a token a fixed number of times.
    struct Player {
        peer: Option<ComponentId>,
        log: Vec<(f64, u32)>,
    }

    impl Component<u32> for Player {
        fn on_event(&mut self, event: Event<u32>, ctx: &mut EngineCtx<'_, u32>) {
            self.log.push((event.time.as_ns(), event.payload));
            if event.payload > 0 {
                let peer = self.peer.expect("peer wired");
                ctx.schedule_in(2.5, peer, event.payload - 1);
            }
        }
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    #[test]
    fn ping_pong_alternates_components() {
        let mut engine = Engine::new(0);
        // Ids are assigned sequentially, so peers can be wired ahead.
        let a = engine.add_component(Player { peer: Some(ComponentId(1)), log: Vec::new() });
        let b = engine.add_component(Player { peer: Some(ComponentId(0)), log: Vec::new() });
        assert!(engine.component::<Player>(a).is_some());

        engine.schedule(SimTime::ZERO, a, 4);
        let n = engine.run_until_idle();
        assert_eq!(n, 5);
        let pa: Player = engine.extract(a).unwrap();
        let pb: Player = engine.extract(b).unwrap();
        assert_eq!(pa.log, vec![(0.0, 4), (5.0, 2), (10.0, 0)]);
        assert_eq!(pb.log, vec![(2.5, 3), (7.5, 1)]);
        assert_eq!(engine.now(), SimTime::from_ns(10.0));
    }

    #[test]
    fn components_can_spawn_components_mid_run() {
        /// Spawns one child per event and forwards the countdown to it.
        struct Spawner;
        struct Child {
            heard: u32,
        }
        impl Component<u32> for Spawner {
            fn on_event(&mut self, event: Event<u32>, ctx: &mut EngineCtx<'_, u32>) {
                if event.payload > 0 {
                    let child = ctx.add_component(Child { heard: 0 });
                    ctx.schedule_in(1.0, child, event.payload);
                }
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        impl Component<u32> for Child {
            fn on_event(&mut self, event: Event<u32>, _: &mut EngineCtx<'_, u32>) {
                self.heard += event.payload;
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }

        let mut engine = Engine::new(0);
        let spawner = engine.add_component(Spawner);
        assert_eq!(engine.next_component_id(), ComponentId(1));
        engine.schedule(SimTime::ZERO, spawner, 7);
        engine.schedule(SimTime::from_ns(2.0), spawner, 9);
        engine.run_until_idle();
        let first: Child = engine.extract(ComponentId(1)).unwrap();
        let second: Child = engine.extract(ComponentId(2)).unwrap();
        assert_eq!(first.heard, 7);
        assert_eq!(second.heard, 9);
    }

    #[test]
    fn spawned_component_receives_same_instant_events() {
        // A spawn plus a zero-delay event to the child: the child must
        // be in the registry by the time the follow-up instant (same
        // timestamp, later sequence id) dispatches.
        struct Spawner;
        struct Child {
            heard: u32,
        }
        impl Component<u32> for Spawner {
            fn on_event(&mut self, event: Event<u32>, ctx: &mut EngineCtx<'_, u32>) {
                let child = ctx.add_component(Child { heard: 0 });
                ctx.schedule(event.time, child, event.payload);
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        impl Component<u32> for Child {
            fn on_event(&mut self, event: Event<u32>, _: &mut EngineCtx<'_, u32>) {
                self.heard += event.payload;
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut engine = Engine::new(0);
        let spawner = engine.add_component(Spawner);
        engine.schedule(SimTime::from_ns(5.0), spawner, 3);
        engine.run_until_idle();
        let child: Child = engine.extract(ComponentId(1)).unwrap();
        assert_eq!(child.heard, 3);
        assert_eq!(engine.now(), SimTime::from_ns(5.0));
    }

    #[test]
    fn clock_is_monotone_and_processed_counts() {
        struct Sink;
        impl Component<()> for Sink {
            fn on_event(&mut self, _: Event<()>, _: &mut EngineCtx<'_, ()>) {}
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut engine = Engine::new(1);
        let id = engine.add_component(Sink);
        for t in [5.0, 1.0, 3.0] {
            engine.schedule(SimTime::from_ns(t), id, ());
        }
        assert_eq!(engine.run_until_idle(), 3);
        assert_eq!(engine.processed(), 3);
        assert_eq!(engine.now(), SimTime::from_ns(5.0));
    }

    #[test]
    fn step_processes_one_instant_at_a_time() {
        struct Sink {
            seen: Vec<(f64, u32)>,
        }
        impl Component<u32> for Sink {
            fn on_event(&mut self, event: Event<u32>, _: &mut EngineCtx<'_, u32>) {
                self.seen.push((event.time.as_ns(), event.payload));
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut engine = Engine::new(0);
        let id = engine.add_component(Sink { seen: Vec::new() });
        engine.reserve_events(16);
        engine.schedule(SimTime::from_ns(1.0), id, 0);
        engine.schedule(SimTime::from_ns(1.0), id, 1);
        engine.schedule(SimTime::from_ns(2.0), id, 2);
        assert_eq!(engine.step(), 2, "both t=1 events in one step");
        assert_eq!(engine.now(), SimTime::from_ns(1.0));
        assert_eq!(engine.step(), 1);
        assert_eq!(engine.step(), 0);
        let sink: Sink = engine.extract(id).unwrap();
        assert_eq!(sink.seen, vec![(1.0, 0), (1.0, 1), (2.0, 2)]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Rewind;
        impl Component<()> for Rewind {
            fn on_event(&mut self, _: Event<()>, ctx: &mut EngineCtx<'_, ()>) {
                ctx.schedule(SimTime::ZERO, ComponentId(0), ());
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut engine = Engine::new(0);
        let id = engine.add_component(Rewind);
        engine.schedule(SimTime::from_ns(3.0), id, ());
        engine.run_until_idle();
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn negative_delay_panics() {
        struct Rewind;
        impl Component<()> for Rewind {
            fn on_event(&mut self, event: Event<()>, ctx: &mut EngineCtx<'_, ()>) {
                ctx.schedule_in(-1.0, event.target, ());
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut engine = Engine::new(0);
        let id = engine.add_component(Rewind);
        engine.schedule(SimTime::ZERO, id, ());
        engine.run_until_idle();
    }

    #[test]
    fn run_until_stops_at_the_horizon_and_drains_whole_instants() {
        struct Sink {
            seen: Vec<f64>,
        }
        impl Component<u32> for Sink {
            fn on_event(&mut self, event: Event<u32>, _: &mut EngineCtx<'_, u32>) {
                self.seen.push(event.time.as_ns());
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut engine = Engine::new(0);
        let id = engine.add_component(Sink { seen: Vec::new() });
        for t in [1.0, 1.0, 3.0, 5.0] {
            engine.schedule(SimTime::from_ns(t), id, 0);
        }
        assert_eq!(engine.peek_next_time(), Some(SimTime::from_ns(1.0)));
        // Horizon exactly at a pending instant: that instant stays.
        assert_eq!(engine.run_until(SimTime::from_ns(3.0)), 2);
        assert_eq!(engine.peek_next_time(), Some(SimTime::from_ns(3.0)));
        assert_eq!(engine.run_until(SimTime::from_ns(10.0)), 2);
        assert_eq!(engine.peek_next_time(), None);
        let sink: Sink = engine.extract(id).unwrap();
        assert_eq!(sink.seen, vec![1.0, 1.0, 3.0, 5.0]);
    }

    #[test]
    fn vacant_slots_export_when_capture_is_on() {
        struct Emitter;
        impl Component<u32> for Emitter {
            fn on_event(&mut self, event: Event<u32>, ctx: &mut EngineCtx<'_, u32>) {
                // Address the padded remote slot, twice at one instant.
                ctx.schedule(event.time, ComponentId(1), event.payload);
                ctx.schedule_in(2.0, ComponentId(1), event.payload + 1);
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut engine = Engine::new(0);
        let id = engine.add_component(Emitter);
        engine.pad_components(1);
        engine.enable_exports();
        engine.schedule(SimTime::from_ns(1.0), id, 7);
        engine.run_until_idle();
        let exports = engine.take_exports();
        let flat: Vec<(f64, usize, u32)> =
            exports.iter().map(|e| (e.time.as_ns(), e.target.0, e.payload)).collect();
        assert_eq!(flat, vec![(1.0, 1, 7), (3.0, 1, 8)]);
        assert!(engine.take_exports().is_empty(), "take drains");
    }

    #[test]
    #[should_panic(expected = "missing component")]
    fn vacant_slots_panic_without_capture() {
        struct Sink;
        impl Component<()> for Sink {
            fn on_event(&mut self, _: Event<()>, _: &mut EngineCtx<'_, ()>) {}
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut engine = Engine::new(0);
        engine.add_component(Sink);
        engine.pad_components(1);
        engine.schedule(SimTime::ZERO, ComponentId(1), ());
        engine.run_until_idle();
    }

    #[test]
    fn reference_queue_engine_matches_calendar_engine() {
        fn run(reference: bool) -> (u64, f64, Vec<(f64, u32)>) {
            let mut engine = Engine::new(9);
            if reference {
                engine.use_reference_queue();
            }
            let a = engine.add_component(Player { peer: Some(ComponentId(1)), log: Vec::new() });
            let _b = engine.add_component(Player { peer: Some(ComponentId(0)), log: Vec::new() });
            engine.schedule(SimTime::ZERO, a, 9);
            let n = engine.run_until_idle();
            let now = engine.now().as_ns();
            let pa: Player = engine.extract(a).unwrap();
            (n, now, pa.log)
        }
        assert_eq!(run(false), run(true));
    }
}
