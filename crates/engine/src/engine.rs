//! The engine: clock + event queue + component registry + RNG.

use crate::queue::{Event, EventQueue};
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::ComponentId;
use std::any::Any;

/// A simulation component: anything that owns state and reacts to
/// events addressed to it (a core, a bus, a memory controller, ...).
///
/// Components communicate exclusively by scheduling events through
/// the [`EngineCtx`] they are handed — never by calling each other
/// directly — which is what makes the simulation composable and the
/// event order the single source of truth for time.
pub trait Component<E>: Any {
    /// Reacts to one event addressed to this component.
    fn on_event(&mut self, event: Event<E>, ctx: &mut EngineCtx<'_, E>);

    /// Upcast for post-run state extraction via
    /// [`Engine::extract`]. Implementations are always `self`.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The slice of engine state a component may touch while handling an
/// event: the clock, the queue, the seeded RNG, and the component
/// registry (for spawning — never for reaching into a peer).
pub struct EngineCtx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    rng: &'a mut SimRng,
    components: &'a mut Vec<Option<Box<dyn Component<E>>>>,
}

impl<E: 'static> EngineCtx<'_, E> {
    /// Registers a new component mid-run, returning its address.
    /// Orchestrator components use this to spawn workers whose start
    /// time is only known dynamically (e.g. a chip sequencer spawning
    /// its cores when a pipeline stage's inputs arrive).
    pub fn add_component<C: Component<E>>(&mut self, component: C) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Some(Box::new(component)));
        id
    }
}

impl<E> EngineCtx<'_, E> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` for `target` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the clock (events cannot fire
    /// in the past).
    pub fn schedule(&mut self, time: SimTime, target: ComponentId, payload: E) {
        assert!(time >= self.now, "cannot schedule into the past: {time} < {}", self.now);
        self.queue.push(time, target, payload);
    }

    /// Schedules `payload` for `target` after `delay_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `delay_ns` is negative or non-finite (events cannot
    /// fire in the past).
    pub fn schedule_in(&mut self, delay_ns: f64, target: ComponentId, payload: E) {
        assert!(delay_ns >= 0.0, "cannot schedule into the past: delay {delay_ns} ns");
        let time = self.now.advance(delay_ns);
        self.queue.push(time, target, payload);
    }

    /// The engine's seeded RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

/// A deterministic discrete-event simulation engine.
///
/// Events are processed in `(time, sequence)` order; the sequence id
/// is assigned at scheduling time, so two runs with the same seed and
/// the same component behaviour produce bit-identical histories.
///
/// # Example
///
/// ```
/// use pim_engine::{Component, Engine, EngineCtx, Event, SimTime};
///
/// struct Counter {
///     fired: Vec<f64>,
/// }
///
/// impl Component<u32> for Counter {
///     fn on_event(&mut self, event: Event<u32>, ctx: &mut EngineCtx<'_, u32>) {
///         self.fired.push(event.time.as_ns());
///         if event.payload > 0 {
///             ctx.schedule_in(10.0, event.target, event.payload - 1);
///         }
///     }
///     fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
///         self
///     }
/// }
///
/// let mut engine = Engine::new(7);
/// let id = engine.add_component(Counter { fired: Vec::new() });
/// engine.schedule(SimTime::ZERO, id, 2);
/// engine.run_until_idle();
/// let counter: Counter = engine.extract(id).unwrap();
/// assert_eq!(counter.fired, vec![0.0, 10.0, 20.0]);
/// ```
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    components: Vec<Option<Box<dyn Component<E>>>>,
    rng: SimRng,
    processed: u64,
}

impl<E: 'static> Engine<E> {
    /// Creates an idle engine whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            components: Vec::new(),
            rng: SimRng::seed_from_u64(seed),
            processed: 0,
        }
    }

    /// Registers a component, returning its address.
    pub fn add_component<C: Component<E>>(&mut self, component: C) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Some(Box::new(component)));
        id
    }

    /// The address the next [`Self::add_component`] call will return.
    /// Lets wiring code hand a component the ids of peers that are
    /// registered right after it.
    pub fn next_component_id(&self) -> ComponentId {
        ComponentId(self.components.len())
    }

    /// Removes a component and downcasts it to its concrete type, for
    /// reading out final state after a run.
    ///
    /// Returns `None` if the slot is empty or the type does not
    /// match. A type mismatch is destructive: the component has
    /// already been removed and is dropped, so extract with the type
    /// the slot was registered with. (Use [`Self::component`] for a
    /// non-consuming, non-destructive probe.)
    pub fn extract<C: Component<E>>(&mut self, id: ComponentId) -> Option<C> {
        let slot = self.components.get_mut(id.0)?;
        let boxed = slot.take()?;
        match boxed.into_any().downcast::<C>() {
            Ok(c) => Some(*c),
            Err(_) => None,
        }
    }

    /// Borrows a registered component by concrete type.
    pub fn component<C: Component<E>>(&self, id: ComponentId) -> Option<&C> {
        let boxed = self.components.get(id.0)?.as_ref()?;
        (boxed.as_ref() as &dyn Any).downcast_ref::<C>()
    }

    /// The current simulation time (the timestamp of the most recent
    /// event, or the start time if nothing ran yet).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The engine's seeded RNG (for seeding initial state before a
    /// run).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules `payload` for `target` at absolute `time` from
    /// outside any component.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current clock.
    pub fn schedule(&mut self, time: SimTime, target: ComponentId, payload: E) {
        assert!(time >= self.now, "cannot schedule into the past");
        self.queue.push(time, target, payload);
    }

    /// Dispatches events in `(time, seq)` order until the queue is
    /// empty, returning the number of events processed.
    ///
    /// # Panics
    ///
    /// Panics if an event addresses a component that was never
    /// registered or has been extracted.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut count = 0u64;
        while let Some(event) = self.queue.pop() {
            assert!(event.time >= self.now, "event queue went backwards");
            self.now = event.time;
            let target = event.target;
            let mut component =
                self.components[target.0].take().expect("event addressed to missing component");
            let mut ctx = EngineCtx {
                now: self.now,
                queue: &mut self.queue,
                rng: &mut self.rng,
                components: &mut self.components,
            };
            component.on_event(event, &mut ctx);
            self.components[target.0] = Some(component);
            count += 1;
        }
        self.processed += count;
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two components ping-ponging a token a fixed number of times.
    struct Player {
        peer: Option<ComponentId>,
        log: Vec<(f64, u32)>,
    }

    impl Component<u32> for Player {
        fn on_event(&mut self, event: Event<u32>, ctx: &mut EngineCtx<'_, u32>) {
            self.log.push((event.time.as_ns(), event.payload));
            if event.payload > 0 {
                let peer = self.peer.expect("peer wired");
                ctx.schedule_in(2.5, peer, event.payload - 1);
            }
        }
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    #[test]
    fn ping_pong_alternates_components() {
        let mut engine = Engine::new(0);
        // Ids are assigned sequentially, so peers can be wired ahead.
        let a = engine.add_component(Player { peer: Some(ComponentId(1)), log: Vec::new() });
        let b = engine.add_component(Player { peer: Some(ComponentId(0)), log: Vec::new() });
        assert!(engine.component::<Player>(a).is_some());

        engine.schedule(SimTime::ZERO, a, 4);
        let n = engine.run_until_idle();
        assert_eq!(n, 5);
        let pa: Player = engine.extract(a).unwrap();
        let pb: Player = engine.extract(b).unwrap();
        assert_eq!(pa.log, vec![(0.0, 4), (5.0, 2), (10.0, 0)]);
        assert_eq!(pb.log, vec![(2.5, 3), (7.5, 1)]);
        assert_eq!(engine.now(), SimTime::from_ns(10.0));
    }

    #[test]
    fn components_can_spawn_components_mid_run() {
        /// Spawns one child per event and forwards the countdown to it.
        struct Spawner;
        struct Child {
            heard: u32,
        }
        impl Component<u32> for Spawner {
            fn on_event(&mut self, event: Event<u32>, ctx: &mut EngineCtx<'_, u32>) {
                if event.payload > 0 {
                    let child = ctx.add_component(Child { heard: 0 });
                    ctx.schedule_in(1.0, child, event.payload);
                }
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        impl Component<u32> for Child {
            fn on_event(&mut self, event: Event<u32>, _: &mut EngineCtx<'_, u32>) {
                self.heard += event.payload;
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }

        let mut engine = Engine::new(0);
        let spawner = engine.add_component(Spawner);
        assert_eq!(engine.next_component_id(), ComponentId(1));
        engine.schedule(SimTime::ZERO, spawner, 7);
        engine.schedule(SimTime::from_ns(2.0), spawner, 9);
        engine.run_until_idle();
        let first: Child = engine.extract(ComponentId(1)).unwrap();
        let second: Child = engine.extract(ComponentId(2)).unwrap();
        assert_eq!(first.heard, 7);
        assert_eq!(second.heard, 9);
    }

    #[test]
    fn clock_is_monotone_and_processed_counts() {
        struct Sink;
        impl Component<()> for Sink {
            fn on_event(&mut self, _: Event<()>, _: &mut EngineCtx<'_, ()>) {}
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut engine = Engine::new(1);
        let id = engine.add_component(Sink);
        for t in [5.0, 1.0, 3.0] {
            engine.schedule(SimTime::from_ns(t), id, ());
        }
        assert_eq!(engine.run_until_idle(), 3);
        assert_eq!(engine.processed(), 3);
        assert_eq!(engine.now(), SimTime::from_ns(5.0));
    }
}
