//! A deterministic dependency + resource graph for ready-set
//! dispatching.
//!
//! [`TaskGraph`] tracks a fixed set of nodes (dense `usize` ids), the
//! precedence edges between them, per-node resource claims, and an
//! optional count of *external* dependencies (inputs satisfied by the
//! outside world rather than by another node — e.g. an inter-chip
//! hand-off landing). A node is **ready** when every predecessor has
//! completed, every external dependency has been satisfied, and every
//! resource it claims exclusively is free.
//!
//! Claims follow read-write-lock semantics: any number of nodes may
//! hold a *shared* claim on a resource concurrently, an *exclusive*
//! claim excludes every other holder. This is what lets a scheduler
//! express "these stages own disjoint crossbar groups but all stream
//! through the one memory channel".
//!
//! All iteration orders are by ascending node id, so dispatch driven
//! by this graph is deterministic by construction — no hash-map
//! iteration anywhere.

use std::collections::BTreeMap;

/// How a node holds a resource while it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimKind {
    /// Sole ownership: conflicts with every other claim on the same
    /// resource.
    Exclusive,
    /// Concurrent use: conflicts only with exclusive claims on the
    /// same resource.
    Shared,
}

#[derive(Debug, Clone, Copy, Default)]
struct ResourceState {
    exclusive_holders: usize,
    shared_holders: usize,
}

#[derive(Debug, Clone, Default)]
struct Node {
    /// Predecessor completions still outstanding.
    pending_deps: usize,
    /// External inputs still outstanding.
    pending_external: usize,
    /// Nodes to notify on completion.
    dependents: Vec<usize>,
    /// `(resource, kind)` pairs acquired while running.
    claims: Vec<(u64, ClaimKind)>,
    started: bool,
    completed: bool,
}

/// A dependency/resource graph dispatched as a ready set.
///
/// # Example
///
/// ```
/// use pim_engine::{ClaimKind, TaskGraph};
///
/// let mut g = TaskGraph::new(3);
/// g.add_dep(0, 2); // 2 runs after 0
/// g.add_dep(1, 2);
/// g.claim(0, 7, ClaimKind::Exclusive);
/// g.claim(1, 7, ClaimKind::Exclusive); // same resource: serialize
/// assert_eq!(g.take_ready(), vec![0]); // 1 blocked on resource 7
/// g.complete(0);
/// assert_eq!(g.take_ready(), vec![1]);
/// g.complete(1);
/// assert_eq!(g.take_ready(), vec![2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    nodes: Vec<Node>,
    resources: BTreeMap<u64, ResourceState>,
    completed: usize,
}

impl TaskGraph {
    /// Creates a graph of `nodes` isolated, unclaimed nodes.
    pub fn new(nodes: usize) -> Self {
        Self { nodes: vec![Node::default(); nodes], resources: BTreeMap::new(), completed: 0 }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for a graph with no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a precedence edge: `after` may not start until `before`
    /// completes.
    ///
    /// # Panics
    ///
    /// Panics when either id is out of range, when the edge is a
    /// self-loop, or after dispatch has started.
    pub fn add_dep(&mut self, before: usize, after: usize) {
        assert!(before != after, "self-dependency on node {before}");
        assert!(!self.nodes[before].started && !self.nodes[after].started, "graph is frozen");
        self.nodes[before].dependents.push(after);
        self.nodes[after].pending_deps += 1;
    }

    /// Declares that `node` holds `resource` with `kind` while it
    /// runs. Claiming the same resource twice keeps the strongest
    /// kind.
    pub fn claim(&mut self, node: usize, resource: u64, kind: ClaimKind) {
        assert!(!self.nodes[node].started, "graph is frozen");
        let claims = &mut self.nodes[node].claims;
        if let Some(existing) = claims.iter_mut().find(|(r, _)| *r == resource) {
            if kind == ClaimKind::Exclusive {
                existing.1 = ClaimKind::Exclusive;
            }
            return;
        }
        claims.push((resource, kind));
    }

    /// Adds `count` external dependencies to `node`, each cleared by
    /// one [`Self::satisfy_external`] call.
    pub fn add_external(&mut self, node: usize, count: usize) {
        assert!(!self.nodes[node].started, "graph is frozen");
        self.nodes[node].pending_external += count;
    }

    /// Appends a fresh, isolated node to a (possibly running) graph
    /// and returns its id. Unlike construction-time nodes, pushed
    /// nodes may be wired with [`Self::add_dep_late`] while earlier
    /// nodes are already dispatching — this is how an open-loop
    /// scheduler grows a round graph as requests arrive.
    pub fn push_node(&mut self) -> usize {
        self.nodes.push(Node::default());
        self.nodes.len() - 1
    }

    /// Pre-sizes the node table for `additional` more
    /// [`Self::push_node`] calls, so growing a live graph one round at
    /// a time (the serving frontend's appended rounds) never
    /// reallocates mid-append.
    pub fn reserve_nodes(&mut self, additional: usize) {
        self.nodes.reserve(additional);
    }

    /// Adds a precedence edge into a running graph: `after` may not
    /// start until `before` completes. Unlike [`Self::add_dep`] the
    /// predecessor may already be running (the edge still blocks
    /// `after`) or complete (the edge is already satisfied and is
    /// dropped).
    ///
    /// # Panics
    ///
    /// Panics when either id is out of range, when the edge is a
    /// self-loop, or when `after` has already started.
    pub fn add_dep_late(&mut self, before: usize, after: usize) {
        assert!(before != after, "self-dependency on node {before}");
        assert!(!self.nodes[after].started, "node {after} already started");
        if self.nodes[before].completed {
            return;
        }
        self.nodes[before].dependents.push(after);
        self.nodes[after].pending_deps += 1;
    }

    /// Clears one external dependency of `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` has no outstanding external dependency.
    pub fn satisfy_external(&mut self, node: usize) {
        let pending = &mut self.nodes[node].pending_external;
        assert!(*pending > 0, "node {node} has no outstanding external dependency");
        *pending -= 1;
    }

    /// `true` when `node`'s precedence edges are all satisfied but at
    /// least one external dependency is still outstanding (i.e. the
    /// node waits on the outside world, not on the graph).
    pub fn blocked_on_external(&self, node: usize) -> bool {
        let n = &self.nodes[node];
        !n.started && n.pending_deps == 0 && n.pending_external > 0
    }

    fn resources_free(&self, node: usize) -> bool {
        self.nodes[node].claims.iter().all(|&(resource, kind)| {
            let state = self.resources.get(&resource).copied().unwrap_or_default();
            match kind {
                ClaimKind::Exclusive => state.exclusive_holders == 0 && state.shared_holders == 0,
                ClaimKind::Shared => state.exclusive_holders == 0,
            }
        })
    }

    fn start(&mut self, node: usize) {
        for &(resource, kind) in &self.nodes[node].claims {
            let state = self.resources.entry(resource).or_default();
            match kind {
                ClaimKind::Exclusive => state.exclusive_holders += 1,
                ClaimKind::Shared => state.shared_holders += 1,
            }
        }
        self.nodes[node].started = true;
    }

    /// Pops every currently ready node (deps satisfied, externals
    /// satisfied, claims acquirable), acquiring its resources. Nodes
    /// are returned — and acquire resources — in ascending id order,
    /// so two nodes racing for one exclusive resource resolve to the
    /// lower id deterministically.
    pub fn take_ready(&mut self) -> Vec<usize> {
        let mut ready = Vec::new();
        for node in 0..self.nodes.len() {
            let n = &self.nodes[node];
            if !n.started && n.pending_deps == 0 && n.pending_external == 0 {
                // Acquisition is immediate so a later node in this
                // same sweep sees the claim.
                if self.resources_free(node) {
                    self.start(node);
                    ready.push(node);
                }
            }
        }
        ready
    }

    /// Marks a started node complete: releases its resources and
    /// unblocks its dependents. Call [`Self::take_ready`] afterwards
    /// to collect what became dispatchable.
    ///
    /// # Panics
    ///
    /// Panics when `node` was never started or completes twice.
    pub fn complete(&mut self, node: usize) {
        {
            let n = &self.nodes[node];
            assert!(n.started, "node {node} completed without starting");
            assert!(!n.completed, "node {node} completed twice");
        }
        self.nodes[node].completed = true;
        self.completed += 1;
        for &(resource, kind) in &self.nodes[node].claims {
            let state = self.resources.get_mut(&resource).expect("claimed resources are tracked");
            match kind {
                ClaimKind::Exclusive => state.exclusive_holders -= 1,
                ClaimKind::Shared => state.shared_holders -= 1,
            }
        }
        let dependents = std::mem::take(&mut self.nodes[node].dependents);
        for dep in &dependents {
            self.nodes[*dep].pending_deps -= 1;
        }
        self.nodes[node].dependents = dependents;
    }

    /// `true` once every node has completed.
    pub fn all_complete(&self) -> bool {
        self.completed == self.nodes.len()
    }

    /// Number of completed nodes.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// `true` when `node` has completed.
    pub fn is_complete(&self, node: usize) -> bool {
        self.nodes[node].completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_dispatches_one_at_a_time() {
        let mut g = TaskGraph::new(3);
        g.add_dep(0, 1);
        g.add_dep(1, 2);
        assert_eq!(g.take_ready(), vec![0]);
        assert_eq!(g.take_ready(), Vec::<usize>::new(), "node 0 still running");
        g.complete(0);
        assert_eq!(g.take_ready(), vec![1]);
        g.complete(1);
        assert_eq!(g.take_ready(), vec![2]);
        g.complete(2);
        assert!(g.all_complete());
    }

    #[test]
    fn independent_nodes_dispatch_together() {
        let mut g = TaskGraph::new(4);
        g.add_dep(0, 3);
        g.add_dep(1, 3);
        g.add_dep(2, 3);
        assert_eq!(g.take_ready(), vec![0, 1, 2]);
        g.complete(1);
        assert!(g.take_ready().is_empty(), "3 waits for all of 0..3");
        g.complete(0);
        g.complete(2);
        assert_eq!(g.take_ready(), vec![3]);
    }

    #[test]
    fn exclusive_claims_serialize_lowest_id_first() {
        let mut g = TaskGraph::new(3);
        g.claim(0, 1, ClaimKind::Exclusive);
        g.claim(1, 1, ClaimKind::Exclusive);
        g.claim(2, 2, ClaimKind::Exclusive);
        assert_eq!(g.take_ready(), vec![0, 2], "1 loses the race for resource 1");
        g.complete(0);
        assert_eq!(g.take_ready(), vec![1]);
    }

    #[test]
    fn shared_claims_coexist_but_block_exclusive() {
        let mut g = TaskGraph::new(3);
        g.claim(0, 9, ClaimKind::Shared);
        g.claim(1, 9, ClaimKind::Shared);
        g.claim(2, 9, ClaimKind::Exclusive);
        assert_eq!(g.take_ready(), vec![0, 1], "readers coexist; the writer waits");
        g.complete(0);
        assert!(g.take_ready().is_empty(), "one reader still holds the resource");
        g.complete(1);
        assert_eq!(g.take_ready(), vec![2]);
    }

    #[test]
    fn exclusive_upgrade_wins_on_double_claim() {
        let mut g = TaskGraph::new(2);
        g.claim(0, 5, ClaimKind::Shared);
        g.claim(0, 5, ClaimKind::Exclusive);
        g.claim(1, 5, ClaimKind::Shared);
        assert_eq!(g.take_ready(), vec![0], "upgraded claim excludes the reader");
        g.complete(0);
        assert_eq!(g.take_ready(), vec![1]);
    }

    #[test]
    fn external_dependencies_gate_until_satisfied() {
        let mut g = TaskGraph::new(2);
        g.add_external(0, 2);
        assert_eq!(g.take_ready(), vec![1]);
        assert!(g.blocked_on_external(0));
        g.satisfy_external(0);
        assert!(g.take_ready().is_empty(), "one external input still missing");
        g.satisfy_external(0);
        assert!(!g.blocked_on_external(0));
        assert_eq!(g.take_ready(), vec![0]);
    }

    #[test]
    fn empty_graph_is_trivially_complete() {
        let mut g = TaskGraph::new(0);
        assert!(g.is_empty());
        assert!(g.all_complete());
        assert!(g.take_ready().is_empty());
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let mut g = TaskGraph::new(1);
        assert_eq!(g.take_ready(), vec![0]);
        g.complete(0);
        g.complete(0);
    }

    #[test]
    fn pushed_nodes_extend_a_running_graph() {
        let mut g = TaskGraph::new(2);
        g.add_dep(0, 1);
        assert_eq!(g.take_ready(), vec![0]);
        // Graph is dispatching; classic add_dep would panic now.
        let n = g.push_node();
        assert_eq!(n, 2);
        g.add_dep_late(1, n);
        g.complete(0);
        assert_eq!(g.take_ready(), vec![1]);
        g.complete(1);
        assert_eq!(g.take_ready(), vec![n]);
        g.complete(n);
        assert!(g.all_complete());
    }

    #[test]
    fn late_edge_from_completed_predecessor_is_already_satisfied() {
        let mut g = TaskGraph::new(1);
        assert_eq!(g.take_ready(), vec![0]);
        g.complete(0);
        let n = g.push_node();
        g.add_dep_late(0, n);
        assert_eq!(g.take_ready(), vec![n], "completed predecessor must not block");
    }

    #[test]
    fn late_edge_from_running_predecessor_still_blocks() {
        let mut g = TaskGraph::new(1);
        assert_eq!(g.take_ready(), vec![0]);
        let n = g.push_node();
        g.add_dep_late(0, n);
        assert!(g.take_ready().is_empty(), "running predecessor blocks");
        g.complete(0);
        assert_eq!(g.take_ready(), vec![n]);
    }

    #[test]
    fn pushed_nodes_accept_claims_and_externals() {
        let mut g = TaskGraph::new(1);
        g.claim(0, 3, ClaimKind::Exclusive);
        assert_eq!(g.take_ready(), vec![0]);
        let n = g.push_node();
        g.claim(n, 3, ClaimKind::Exclusive);
        g.add_external(n, 1);
        assert!(g.take_ready().is_empty(), "resource held and external pending");
        g.satisfy_external(n);
        assert!(g.take_ready().is_empty(), "resource still held");
        g.complete(0);
        assert_eq!(g.take_ready(), vec![n]);
    }
}
