//! Static instruction statistics.

use crate::instruction::Instruction;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate counts over an instruction stream, used for reporting and
/// as inputs to the energy model (DRAM traffic, MVM activations, cell
/// writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct InstructionStats {
    /// Instruction count by class.
    pub load_weight: usize,
    /// `WRITE_WEIGHT` count.
    pub write_weight: usize,
    /// `LOAD_DATA` count.
    pub load_data: usize,
    /// `MVMUL` count.
    pub mvmul: usize,
    /// `VOP` count.
    pub vector_op: usize,
    /// `SEND_DATA` count.
    pub send: usize,
    /// `RECV_DATA` count.
    pub recv: usize,
    /// `STORE_DATA` count.
    pub store_data: usize,
    /// Total bytes of weights streamed from DRAM.
    pub weight_load_bytes: usize,
    /// Total crossbar cells (bits) written.
    pub weight_write_bits: usize,
    /// Total activation bytes loaded from DRAM.
    pub data_load_bytes: usize,
    /// Total activation bytes stored to DRAM.
    pub data_store_bytes: usize,
    /// Total bytes moved core-to-core.
    pub interconnect_bytes: usize,
    /// Total MVM waves (sequential crossbar occupations).
    pub mvm_waves: usize,
    /// Total crossbar activations (energy events).
    pub mvm_activations: usize,
    /// Total VFU elements processed.
    pub vfu_elements: usize,
}

impl InstructionStats {
    /// Computes statistics over any instruction iterator.
    pub fn of<'a>(instructions: impl IntoIterator<Item = &'a Instruction>) -> Self {
        let mut s = Self::default();
        for instr in instructions {
            match instr {
                Instruction::LoadWeight { bytes } => {
                    s.load_weight += 1;
                    s.weight_load_bytes += bytes;
                }
                Instruction::WriteWeight { bits, .. } => {
                    s.write_weight += 1;
                    s.weight_write_bits += bits;
                }
                Instruction::LoadData { bytes } => {
                    s.load_data += 1;
                    s.data_load_bytes += bytes;
                }
                Instruction::Mvmul { waves, activations, .. } => {
                    s.mvmul += 1;
                    s.mvm_waves += waves;
                    s.mvm_activations += activations;
                }
                Instruction::VectorOp { elements, .. } => {
                    s.vector_op += 1;
                    s.vfu_elements += elements;
                }
                Instruction::Send { bytes, .. } => {
                    s.send += 1;
                    s.interconnect_bytes += bytes;
                }
                Instruction::Recv { .. } => s.recv += 1,
                Instruction::StoreData { bytes } => {
                    s.store_data += 1;
                    s.data_store_bytes += bytes;
                }
            }
        }
        s
    }

    /// Total instruction count.
    pub fn total(&self) -> usize {
        self.load_weight
            + self.write_weight
            + self.load_data
            + self.mvmul
            + self.vector_op
            + self.send
            + self.recv
            + self.store_data
    }

    /// Total DRAM traffic (weights + activations) in bytes.
    pub fn dram_bytes(&self) -> usize {
        self.weight_load_bytes + self.data_load_bytes + self.data_store_bytes
    }
}

impl fmt::Display for InstructionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instrs (mvmul {}, vop {}, send/recv {}/{}), DRAM {} B (w {} / in {} / out {}), {} waves, {} activations",
            self.total(),
            self.mvmul,
            self.vector_op,
            self.send,
            self.recv,
            self.dram_bytes(),
            self.weight_load_bytes,
            self.data_load_bytes,
            self.data_store_bytes,
            self.mvm_waves,
            self.mvm_activations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{CoreId, Tag, VectorOpKind};

    #[test]
    fn stats_accumulate_every_class() {
        let instrs = vec![
            Instruction::LoadWeight { bytes: 100 },
            Instruction::WriteWeight { bits: 800, crossbars: 2 },
            Instruction::LoadData { bytes: 10 },
            Instruction::Mvmul { waves: 3, activations: 12, node: 0 },
            Instruction::VectorOp { op: VectorOpKind::Relu, elements: 64 },
            Instruction::Send { to: CoreId(1), bytes: 5, tag: Tag(1) },
            Instruction::Recv { from: CoreId(0), bytes: 5, tag: Tag(1) },
            Instruction::StoreData { bytes: 20 },
        ];
        let s = InstructionStats::of(&instrs);
        assert_eq!(s.total(), 8);
        assert_eq!(s.weight_load_bytes, 100);
        assert_eq!(s.weight_write_bits, 800);
        assert_eq!(s.dram_bytes(), 130);
        assert_eq!(s.mvm_waves, 3);
        assert_eq!(s.mvm_activations, 12);
        assert_eq!(s.interconnect_bytes, 5);
        assert_eq!(s.vfu_elements, 64);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = InstructionStats::of(&[]);
        assert_eq!(s.total(), 0);
        assert_eq!(s.dram_bytes(), 0);
    }

    #[test]
    fn display_mentions_totals() {
        let s = InstructionStats::of(&[Instruction::Mvmul { waves: 1, activations: 2, node: 0 }]);
        assert!(s.to_string().contains("1 instrs"));
    }
}
