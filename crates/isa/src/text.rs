//! Textual assembly format for PIM programs.
//!
//! A line-oriented, human-editable format mirroring the paper's Fig. 3
//! instruction listings, with an exact parse/print round-trip. Useful
//! for golden-file tests, debugging schedules, and hand-writing
//! microbenchmarks for the simulator.
//!
//! ```text
//! .core 0
//!     LOAD_WEIGHT 4096
//!     WRITE_WEIGHT 32768 4
//!     LOAD_DATA 1024
//!     MVMUL 196 784 3
//!     VOP relu 64
//!     SEND_DATA 256 core1 t7
//! .core 1
//!     RECV_DATA 256 core0 t7
//!     STORE_DATA 128
//! ```

use crate::instruction::{CoreId, Instruction, Tag, VectorOpKind};
use crate::program::{ChipProgram, CoreProgram};
use std::error::Error;
use std::fmt;

/// A parse failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.detail)
    }
}

impl Error for ParseAsmError {}

/// Renders a chip program in the textual format (empty cores are
/// omitted).
pub fn assemble(program: &ChipProgram) -> String {
    let mut out = String::new();
    for core in program.iter() {
        if core.is_empty() {
            continue;
        }
        out.push_str(&format!(".core {}\n", core.core().index()));
        for instr in core.iter() {
            out.push_str("    ");
            out.push_str(&instruction_line(instr));
            out.push('\n');
        }
    }
    out
}

fn instruction_line(instr: &Instruction) -> String {
    match *instr {
        Instruction::LoadWeight { bytes } => format!("LOAD_WEIGHT {bytes}"),
        Instruction::WriteWeight { bits, crossbars } => {
            format!("WRITE_WEIGHT {bits} {crossbars}")
        }
        Instruction::LoadData { bytes } => format!("LOAD_DATA {bytes}"),
        Instruction::Mvmul { waves, activations, node } => {
            format!("MVMUL {waves} {activations} {node}")
        }
        Instruction::VectorOp { op, elements } => format!("VOP {op} {elements}"),
        Instruction::Send { to, bytes, tag } => format!("SEND_DATA {bytes} {to} {tag}"),
        Instruction::Recv { from, bytes, tag } => format!("RECV_DATA {bytes} {from} {tag}"),
        Instruction::StoreData { bytes } => format!("STORE_DATA {bytes}"),
    }
}

/// Parses the textual format back into a [`ChipProgram`] with
/// `cores` per-core streams.
///
/// # Errors
///
/// Returns [`ParseAsmError`] on unknown mnemonics, malformed
/// operands, out-of-range core ids, or instructions before the first
/// `.core` directive. Blank lines and `#` comments are ignored.
pub fn parse(text: &str, cores: usize) -> Result<ChipProgram, ParseAsmError> {
    let mut program = ChipProgram::new(cores);
    let mut current: Option<CoreId> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |detail: String| ParseAsmError { line: line_no, detail };
        if let Some(rest) = line.strip_prefix(".core") {
            let id: usize =
                rest.trim().parse().map_err(|_| err(format!("bad core id {rest:?}")))?;
            if id >= cores {
                return Err(err(format!("core {id} out of range (chip has {cores})")));
            }
            current = Some(CoreId(id));
            continue;
        }
        let core = current.ok_or_else(|| err("instruction before .core directive".into()))?;
        let mut parts = line.split_whitespace();
        let mnemonic = parts.next().expect("non-empty line has a token");
        let operands: Vec<&str> = parts.collect();
        let instr = parse_instruction(mnemonic, &operands)
            .map_err(|detail| err(format!("{mnemonic}: {detail}")))?;
        program.core_mut(core).push(instr);
    }
    Ok(program)
}

fn parse_instruction(mnemonic: &str, operands: &[&str]) -> Result<Instruction, String> {
    let number =
        |s: &str| -> Result<usize, String> { s.parse().map_err(|_| format!("bad number {s:?}")) };
    let core = |s: &str| -> Result<CoreId, String> {
        s.strip_prefix("core")
            .and_then(|n| n.parse().ok())
            .map(CoreId)
            .ok_or_else(|| format!("bad core ref {s:?}"))
    };
    let tag = |s: &str| -> Result<Tag, String> {
        s.strip_prefix('t')
            .and_then(|n| n.parse().ok())
            .map(Tag)
            .ok_or_else(|| format!("bad tag {s:?}"))
    };
    let arity = |n: usize| -> Result<(), String> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(format!("expected {n} operands, got {}", operands.len()))
        }
    };
    match mnemonic {
        "LOAD_WEIGHT" => {
            arity(1)?;
            Ok(Instruction::LoadWeight { bytes: number(operands[0])? })
        }
        "WRITE_WEIGHT" => {
            arity(2)?;
            Ok(Instruction::WriteWeight {
                bits: number(operands[0])?,
                crossbars: number(operands[1])?,
            })
        }
        "LOAD_DATA" => {
            arity(1)?;
            Ok(Instruction::LoadData { bytes: number(operands[0])? })
        }
        "MVMUL" => {
            arity(3)?;
            Ok(Instruction::Mvmul {
                waves: number(operands[0])?,
                activations: number(operands[1])?,
                node: number(operands[2])?,
            })
        }
        "VOP" => {
            arity(2)?;
            let op = match operands[0] {
                "relu" => VectorOpKind::Relu,
                "bn" => VectorOpKind::BatchNorm,
                "pool" => VectorOpKind::Pool,
                "add" => VectorOpKind::Add,
                "concat" => VectorOpKind::Concat,
                "softmax" => VectorOpKind::Softmax,
                "move" => VectorOpKind::Move,
                other => return Err(format!("unknown vector op {other:?}")),
            };
            Ok(Instruction::VectorOp { op, elements: number(operands[1])? })
        }
        "SEND_DATA" => {
            arity(3)?;
            Ok(Instruction::Send {
                bytes: number(operands[0])?,
                to: core(operands[1])?,
                tag: tag(operands[2])?,
            })
        }
        "RECV_DATA" => {
            arity(3)?;
            Ok(Instruction::Recv {
                bytes: number(operands[0])?,
                from: core(operands[1])?,
                tag: tag(operands[2])?,
            })
        }
        "STORE_DATA" => {
            arity(1)?;
            Ok(Instruction::StoreData { bytes: number(operands[0])? })
        }
        other => Err(format!("unknown mnemonic {other:?}")),
    }
}

/// Convenience: renders a single core's stream.
pub fn assemble_core(core: &CoreProgram) -> String {
    let mut out = format!(".core {}\n", core.core().index());
    for instr in core.iter() {
        out.push_str("    ");
        out.push_str(&instruction_line(instr));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChipProgram {
        let mut p = ChipProgram::new(4);
        p.core_mut(CoreId(0)).extend([
            Instruction::LoadWeight { bytes: 4096 },
            Instruction::WriteWeight { bits: 32768, crossbars: 4 },
            Instruction::LoadData { bytes: 1024 },
            Instruction::Mvmul { waves: 196, activations: 784, node: 3 },
            Instruction::VectorOp { op: VectorOpKind::Relu, elements: 64 },
            Instruction::Send { to: CoreId(1), bytes: 256, tag: Tag(7) },
        ]);
        p.core_mut(CoreId(1)).extend([
            Instruction::Recv { from: CoreId(0), bytes: 256, tag: Tag(7) },
            Instruction::VectorOp { op: VectorOpKind::Softmax, elements: 10 },
            Instruction::StoreData { bytes: 128 },
        ]);
        p
    }

    #[test]
    fn round_trip_preserves_program() {
        let program = sample();
        let text = assemble(&program);
        let parsed = parse(&text, 4).expect("parses");
        assert_eq!(parsed, program);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header comment\n.core 2\n    MVMUL 1 2 3 # trailing\n\n";
        let p = parse(text, 4).expect("parses");
        assert_eq!(p.core(CoreId(2)).len(), 1);
    }

    #[test]
    fn rejects_instruction_before_core() {
        let err = parse("MVMUL 1 2 3", 4).unwrap_err();
        assert!(err.detail.contains("before .core"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_out_of_range_core() {
        let err = parse(".core 9", 4).unwrap_err();
        assert!(err.detail.contains("out of range"));
    }

    #[test]
    fn rejects_bad_operands() {
        assert!(parse(".core 0\nMVMUL 1 2", 1).is_err()); // arity
        assert!(parse(".core 0\nVOP sigmoid 4", 1).is_err()); // unknown op
        assert!(parse(".core 0\nSEND_DATA 4 c1 t0", 1).is_err()); // bad core ref
        assert!(parse(".core 0\nRECV_DATA 4 core1 7", 1).is_err()); // bad tag
        assert!(parse(".core 0\nFROB 1", 1).is_err()); // unknown mnemonic
    }

    #[test]
    fn all_vector_ops_round_trip() {
        for op in [
            VectorOpKind::Relu,
            VectorOpKind::BatchNorm,
            VectorOpKind::Pool,
            VectorOpKind::Add,
            VectorOpKind::Concat,
            VectorOpKind::Softmax,
            VectorOpKind::Move,
        ] {
            let mut p = ChipProgram::new(1);
            p.core_mut(CoreId(0)).push(Instruction::VectorOp { op, elements: 9 });
            let text = assemble(&p);
            assert_eq!(parse(&text, 1).expect("parses"), p, "op {op}");
        }
    }

    #[test]
    fn assemble_core_headers() {
        let p = sample();
        let text = assemble_core(p.core(CoreId(1)));
        assert!(text.starts_with(".core 1"));
        assert!(text.contains("RECV_DATA 256 core0 t7"));
    }
}
