//! Instruction definitions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a PIM core on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreId(pub usize);

impl CoreId {
    /// Dense index of the core.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Matching tag for a [`Instruction::Send`]/[`Instruction::Recv`] pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tag(pub u64);

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Vector-functional-unit operation classes (the non-crossbar layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VectorOpKind {
    /// ReLU activation.
    Relu,
    /// Batch-normalization scale/shift.
    BatchNorm,
    /// Max/avg pooling reduction.
    Pool,
    /// Element-wise addition (residual).
    Add,
    /// Channel concatenation (copy/pack).
    Concat,
    /// Softmax.
    Softmax,
    /// Generic data movement within local memory.
    Move,
}

impl fmt::Display for VectorOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VectorOpKind::Relu => "relu",
            VectorOpKind::BatchNorm => "bn",
            VectorOpKind::Pool => "pool",
            VectorOpKind::Add => "add",
            VectorOpKind::Concat => "concat",
            VectorOpKind::Softmax => "softmax",
            VectorOpKind::Move => "move",
        };
        write!(f, "{s}")
    }
}

/// One macro-instruction in a per-core stream.
///
/// Latency and energy semantics are defined by the `pim-sim` executor;
/// this crate only fixes the operational semantics:
///
/// * `LoadWeight`/`LoadData` read from global memory (DRAM) into core
///   staging/local memory; `StoreData` writes back.
/// * `WriteWeight` programs previously loaded weight bits into the
///   core's crossbar cells (the *weight replace* phase of §II-A).
/// * `Mvmul` runs `waves` sequential MVM waves totalling `activations`
///   crossbar activations.
/// * `Send`/`Recv` rendezvous by `(from, to, tag)`; `Recv` blocks until
///   the matching `Send` has delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instruction {
    /// Stream weight bytes for the next partition from global memory.
    LoadWeight {
        /// Bytes read from DRAM.
        bytes: usize,
    },
    /// Program loaded weights into crossbar cells.
    WriteWeight {
        /// Cells (bits) written.
        bits: usize,
        /// Distinct crossbars being programmed (writes to different
        /// crossbars proceed in parallel; rows within one crossbar are
        /// sequential).
        crossbars: usize,
    },
    /// Load activation data from global memory (partition entry).
    LoadData {
        /// Bytes read from DRAM.
        bytes: usize,
    },
    /// Execute matrix-vector multiplications.
    Mvmul {
        /// Sequential MVM waves (each wave takes one crossbar MVM
        /// latency).
        waves: usize,
        /// Total crossbar activations across all waves (energy).
        activations: usize,
        /// Model node this computation belongs to (for reporting).
        node: usize,
    },
    /// Vector operation on the VFUs.
    VectorOp {
        /// Operation class.
        op: VectorOpKind,
        /// Elements processed.
        elements: usize,
    },
    /// Send bytes to another core over the on-chip interconnect.
    Send {
        /// Destination core.
        to: CoreId,
        /// Payload size.
        bytes: usize,
        /// Rendezvous tag.
        tag: Tag,
    },
    /// Receive bytes from another core (blocks until delivered).
    Recv {
        /// Source core.
        from: CoreId,
        /// Payload size.
        bytes: usize,
        /// Rendezvous tag.
        tag: Tag,
    },
    /// Store activation data to global memory (partition exit).
    StoreData {
        /// Bytes written to DRAM.
        bytes: usize,
    },
}

impl Instruction {
    /// The mnemonic used by the paper's Fig. 3 instruction listings.
    pub const fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::LoadWeight { .. } => "LOAD_WEIGHT",
            Instruction::WriteWeight { .. } => "WRITE_WEIGHT",
            Instruction::LoadData { .. } => "LOAD_DATA",
            Instruction::Mvmul { .. } => "MVMUL",
            Instruction::VectorOp { .. } => "VOP",
            Instruction::Send { .. } => "SEND_DATA",
            Instruction::Recv { .. } => "RECV_DATA",
            Instruction::StoreData { .. } => "STORE_DATA",
        }
    }

    /// Bytes this instruction moves to or from global memory (DRAM).
    pub const fn dram_bytes(&self) -> usize {
        match self {
            Instruction::LoadWeight { bytes }
            | Instruction::LoadData { bytes }
            | Instruction::StoreData { bytes } => *bytes,
            _ => 0,
        }
    }

    /// `true` if this instruction reads or writes global memory.
    pub const fn touches_dram(&self) -> bool {
        self.dram_bytes() > 0
            || matches!(
                self,
                Instruction::LoadWeight { .. }
                    | Instruction::LoadData { .. }
                    | Instruction::StoreData { .. }
            )
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::LoadWeight { bytes } => write!(f, "LOAD_WEIGHT {bytes}B"),
            Instruction::WriteWeight { bits, crossbars } => {
                write!(f, "WRITE_WEIGHT {bits}b -> {crossbars} xbars")
            }
            Instruction::LoadData { bytes } => write!(f, "LOAD_DATA {bytes}B"),
            Instruction::Mvmul { waves, activations, node } => {
                write!(f, "MVMUL n{node} waves={waves} act={activations}")
            }
            Instruction::VectorOp { op, elements } => write!(f, "VOP {op} x{elements}"),
            Instruction::Send { to, bytes, tag } => write!(f, "SEND_DATA {bytes}B -> {to} {tag}"),
            Instruction::Recv { from, bytes, tag } => {
                write!(f, "RECV_DATA {bytes}B <- {from} {tag}")
            }
            Instruction::StoreData { bytes } => write!(f, "STORE_DATA {bytes}B"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_match_figure3() {
        assert_eq!(Instruction::LoadWeight { bytes: 1 }.mnemonic(), "LOAD_WEIGHT");
        assert_eq!(Instruction::WriteWeight { bits: 1, crossbars: 1 }.mnemonic(), "WRITE_WEIGHT");
        assert_eq!(Instruction::Mvmul { waves: 1, activations: 1, node: 0 }.mnemonic(), "MVMUL");
        assert_eq!(
            Instruction::Send { to: CoreId(1), bytes: 1, tag: Tag(0) }.mnemonic(),
            "SEND_DATA"
        );
    }

    #[test]
    fn dram_byte_accounting() {
        assert_eq!(Instruction::LoadWeight { bytes: 128 }.dram_bytes(), 128);
        assert_eq!(Instruction::StoreData { bytes: 64 }.dram_bytes(), 64);
        assert_eq!(Instruction::Mvmul { waves: 9, activations: 9, node: 0 }.dram_bytes(), 0);
        assert!(Instruction::LoadData { bytes: 1 }.touches_dram());
        assert!(!Instruction::VectorOp { op: VectorOpKind::Relu, elements: 4 }.touches_dram());
    }

    #[test]
    fn display_is_parseable_by_eye() {
        let send = Instruction::Send { to: CoreId(3), bytes: 256, tag: Tag(7) };
        assert_eq!(send.to_string(), "SEND_DATA 256B -> core3 t7");
    }
}
