//! # pim-isa — instruction set for crossbar PIM accelerators
//!
//! A PUMA/PIMCOMP-style instruction set as used by the COMPASS paper's
//! scheduler (Fig. 3 step (iii)): per-core streams of
//! `LOAD WEIGHT / WRITE WEIGHT / LOAD DATA / MVMUL / SEND / RECV /
//! STORE DATA` operations, plus vector ops for the non-crossbar layers.
//!
//! Instructions are *macro-instructions*: each carries aggregate
//! operand sizes (bytes moved, MVM waves executed) rather than
//! element-level operands. This matches the granularity at which both
//! the paper's latency estimator and its simulator reason, keeps
//! programs compact, and still exposes every event the timing/energy
//! models need.
//!
//! # Example
//!
//! ```
//! use pim_isa::{CoreProgram, Instruction, CoreId};
//!
//! let mut prog = CoreProgram::new(CoreId(0));
//! prog.push(Instruction::LoadWeight { bytes: 4096 });
//! prog.push(Instruction::WriteWeight { bits: 4096 * 8, crossbars: 4 });
//! prog.push(Instruction::Mvmul { waves: 196, activations: 784, node: 3 });
//! assert_eq!(prog.len(), 3);
//! assert_eq!(prog.stats().mvm_waves, 196);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod instruction;
pub mod program;
pub mod stats;
pub mod text;

pub use instruction::{CoreId, Instruction, Tag, VectorOpKind};
pub use program::{ChipProgram, CoreProgram};
pub use stats::InstructionStats;
pub use text::{assemble, parse, ParseAsmError};
