//! Per-core and per-chip program containers.

use crate::instruction::{CoreId, Instruction};
use crate::stats::InstructionStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The instruction stream of one PIM core.
///
/// # Example
///
/// ```
/// use pim_isa::{CoreProgram, CoreId, Instruction};
///
/// let mut p = CoreProgram::new(CoreId(2));
/// p.push(Instruction::LoadData { bytes: 1024 });
/// p.push(Instruction::Mvmul { waves: 4, activations: 16, node: 1 });
/// assert_eq!(p.core(), CoreId(2));
/// assert_eq!(p.iter().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreProgram {
    core: CoreId,
    instructions: Vec<Instruction>,
}

impl CoreProgram {
    /// Creates an empty program for `core`.
    pub fn new(core: CoreId) -> Self {
        Self { core, instructions: Vec::new() }
    }

    /// The core this program runs on.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// The instructions as a slice.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Aggregate statistics over this stream.
    pub fn stats(&self) -> InstructionStats {
        InstructionStats::of(self.instructions.iter())
    }
}

impl Extend<Instruction> for CoreProgram {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

impl<'a> IntoIterator for &'a CoreProgram {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

impl fmt::Display for CoreProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} instructions):", self.core, self.len())?;
        for (i, instr) in self.instructions.iter().enumerate() {
            writeln!(f, "  {i:>5}: {instr}")?;
        }
        Ok(())
    }
}

/// A program for every core of a chip, produced by the COMPASS
/// scheduler for one compiled model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ChipProgram {
    programs: Vec<CoreProgram>,
}

impl ChipProgram {
    /// Creates an empty chip program with one (empty) stream per core.
    pub fn new(cores: usize) -> Self {
        Self { programs: (0..cores).map(|i| CoreProgram::new(CoreId(i))).collect() }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.programs.len()
    }

    /// The program of one core.
    pub fn core(&self, id: CoreId) -> &CoreProgram {
        &self.programs[id.index()]
    }

    /// Mutable access to one core's program.
    pub fn core_mut(&mut self, id: CoreId) -> &mut CoreProgram {
        &mut self.programs[id.index()]
    }

    /// Iterates over all per-core programs.
    pub fn iter(&self) -> std::slice::Iter<'_, CoreProgram> {
        self.programs.iter()
    }

    /// Total instruction count across cores.
    pub fn total_instructions(&self) -> usize {
        self.programs.iter().map(CoreProgram::len).sum()
    }

    /// Aggregate statistics across all cores.
    pub fn stats(&self) -> InstructionStats {
        InstructionStats::of(self.programs.iter().flat_map(CoreProgram::iter))
    }
}

impl<'a> IntoIterator for &'a ChipProgram {
    type Item = &'a CoreProgram;
    type IntoIter = std::slice::Iter<'a, CoreProgram>;

    fn into_iter(self) -> Self::IntoIter {
        self.programs.iter()
    }
}

impl fmt::Display for ChipProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for program in &self.programs {
            if !program.is_empty() {
                write!(f, "{program}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Tag;

    #[test]
    fn chip_program_indexing() {
        let mut chip = ChipProgram::new(4);
        chip.core_mut(CoreId(1)).push(Instruction::LoadData { bytes: 8 });
        assert_eq!(chip.cores(), 4);
        assert_eq!(chip.core(CoreId(1)).len(), 1);
        assert_eq!(chip.core(CoreId(0)).len(), 0);
        assert_eq!(chip.total_instructions(), 1);
    }

    #[test]
    fn extend_and_iterate() {
        let mut p = CoreProgram::new(CoreId(0));
        p.extend([
            Instruction::LoadWeight { bytes: 4 },
            Instruction::Send { to: CoreId(1), bytes: 4, tag: Tag(0) },
        ]);
        let mnemonics: Vec<_> = (&p).into_iter().map(Instruction::mnemonic).collect();
        assert_eq!(mnemonics, vec!["LOAD_WEIGHT", "SEND_DATA"]);
    }

    #[test]
    fn display_includes_indices() {
        let mut p = CoreProgram::new(CoreId(0));
        p.push(Instruction::StoreData { bytes: 2 });
        let text = p.to_string();
        assert!(text.contains("core0"));
        assert!(text.contains("STORE_DATA"));
    }
}
